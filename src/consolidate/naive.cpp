#include "consolidate/naive.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "check/consolidate_audit.hpp"
#include "util/log.hpp"

namespace vdc::consolidate::naive {

namespace {

/// The original WorkingPlacement::admits_with: materializes the resident
/// pointer list on every call (the allocation the fast engine eliminated).
bool admits_with(const WorkingPlacement& placement, ServerId server,
                 std::span<const VmId> extra, const ConstraintSet& constraints) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  std::vector<const VmSnapshot*> vms;
  vms.reserve(placement.hosted(server).size() + extra.size());
  for (const VmId vm : placement.hosted(server)) vms.push_back(&snapshot.vm(vm));
  for (const VmId vm : extra) vms.push_back(&snapshot.vm(vm));
  return constraints.admits(snapshot.server(server), vms);
}

bool feasible(const WorkingPlacement& placement, ServerId server,
              const ConstraintSet& constraints) {
  return admits_with(placement, server, {}, constraints);
}

struct SearchState {
  const DataCenterSnapshot* snapshot;
  const ServerSnapshot* server;
  const ConstraintSet* constraints;
  std::vector<VmId> order;                  // candidates, largest demand first
  std::vector<const VmSnapshot*> resident;  // existing + currently selected
  std::vector<VmId> selected;
  double selected_demand_ghz = 0.0;
  double base_demand_ghz = 0.0;  // demand of VMs already on the server

  MinSlackResult best;
  double epsilon;
  std::size_t budget;
  const MinSlackOptions* options;
  bool done = false;

  [[nodiscard]] double slack() const noexcept {
    return server->max_capacity_ghz - base_demand_ghz - selected_demand_ghz;
  }

  void consider_current() {
    const double slack_ghz = slack();
    if (slack_ghz < best.slack_ghz - 1e-12) {
      best.slack_ghz = slack_ghz;
      best.selected = selected;
    }
    if (best.slack_ghz < epsilon) done = true;  // line 4-5 of Algorithm 1
  }

  void dfs(std::size_t start) {
    if (done) return;
    for (std::size_t i = start; i < order.size(); ++i) {
      if (done) return;
      // A "step" is one candidate-placement attempt (the unit of work).
      ++best.steps;
      if (best.steps >= budget) {  // lines 15-17: escalate epsilon
        if (best.escalations >= options->max_escalations) {
          done = true;
          return;
        }
        ++best.escalations;
        epsilon *= options->epsilon_escalation;
        budget += options->step_budget;
        if (best.slack_ghz < epsilon) {
          done = true;
          return;
        }
      }
      const VmId vm = order[i];
      const VmSnapshot& info = snapshot->vm(vm);
      // Symmetry pruning (standard MBS): identical siblings explore
      // identical subtrees — try only the first of an equal run per level.
      if (i > start) {
        const VmSnapshot& prev = snapshot->vm(order[i - 1]);
        // vdc-lint: float-eq-ok identical VMs are grouped by bitwise equality of their stored demand/memory; the values are copies, never recomputed
        if (prev.cpu_demand_ghz == info.cpu_demand_ghz && prev.memory_mb == info.memory_mb) {
          continue;
        }
      }
      // CPU-slack bound: a VM larger than the remaining raw-capacity slack
      // would push total demand past the server's capacity, which can only
      // worsen the slack objective — prune before the full constraint
      // evaluation.
      if (info.cpu_demand_ghz > slack() + 1e-9) continue;
      resident.push_back(&info);  // line 2: pack VM into S
      if (constraints->admits(*server, resident)) {  // line 3
        selected.push_back(vm);
        selected_demand_ghz += info.cpu_demand_ghz;
        consider_current();  // lines 11-14
        if (!done) dfs(i + 1);  // line 7: recurse on the remaining VMs
        selected_demand_ghz -= info.cpu_demand_ghz;
        selected.pop_back();
      }
      resident.pop_back();  // line 9: remove VM from S
    }
  }
};

/// Budgeted Minimum Slack, naive flavor: the plain recursive search of
/// SearchState plus the migration-cost prune, still materializing the
/// resident pointer list per admits call. Mirrors the fast BudgetedSearch
/// (minimum_slack.cpp) decision for decision: same symmetry prune (cost
/// must match too), same CPU-slack bound, same budget prune, same step
/// accounting — so selections AND step counts agree.
struct BudgetedSearchState {
  const DataCenterSnapshot* snapshot;
  const ServerSnapshot* server;
  const ConstraintSet* constraints;
  std::vector<VmId> order;      // candidates, largest demand first
  std::vector<double> cost_of;  // aligned to order (J)
  std::vector<const VmSnapshot*> resident;
  std::vector<VmId> selected;
  double selected_demand_ghz = 0.0;
  double selected_cost = 0.0;
  double budget_j = 0.0;
  double base_demand_ghz = 0.0;

  MinSlackResult best;
  double best_cost = 0.0;
  double epsilon;
  std::size_t budget;
  const MinSlackOptions* options;
  bool done = false;

  [[nodiscard]] double slack() const noexcept {
    return server->max_capacity_ghz - base_demand_ghz - selected_demand_ghz;
  }

  void consider_current() {
    const double slack_ghz = slack();
    if (slack_ghz < best.slack_ghz - 1e-12) {
      best.slack_ghz = slack_ghz;
      best.selected = selected;
      best_cost = selected_cost;
    }
    if (best.slack_ghz < epsilon) done = true;
  }

  void dfs(std::size_t start) {
    if (done) return;
    for (std::size_t i = start; i < order.size(); ++i) {
      if (done) return;
      ++best.steps;
      if (best.steps >= budget) {
        if (best.escalations >= options->max_escalations) {
          done = true;
          return;
        }
        ++best.escalations;
        epsilon *= options->epsilon_escalation;
        budget += options->step_budget;
        if (best.slack_ghz < epsilon) {
          done = true;
          return;
        }
      }
      const VmId vm = order[i];
      const VmSnapshot& info = snapshot->vm(vm);
      if (i > start) {
        const VmSnapshot& prev = snapshot->vm(order[i - 1]);
        // vdc-lint: float-eq-ok identical VMs are grouped by bitwise equality of their stored demand/memory; the values are copies, never recomputed
        if (prev.cpu_demand_ghz == info.cpu_demand_ghz && prev.memory_mb == info.memory_mb &&
            cost_of[i - 1] == cost_of[i]) {
          continue;  // symmetry pruning (cost must match too)
        }
      }
      if (info.cpu_demand_ghz > slack() + 1e-9) continue;           // CPU-slack bound
      if (selected_cost + cost_of[i] > budget_j + 1e-9) continue;   // budget prune
      resident.push_back(&info);
      if (constraints->admits(*server, resident)) {
        selected.push_back(vm);
        selected_demand_ghz += info.cpu_demand_ghz;
        selected_cost += cost_of[i];
        consider_current();
        if (!done) dfs(i + 1);
        selected_demand_ghz -= info.cpu_demand_ghz;
        selected_cost -= cost_of[i];
        selected.pop_back();
      }
      resident.pop_back();
    }
  }
};

/// Smallest-CPU-demand VM on the server (the cheapest to evict).
VmId smallest_vm(const WorkingPlacement& placement, ServerId server) {
  const auto hosted = placement.hosted(server);
  VmId best = hosted.front();
  double best_demand = placement.snapshot().vm(best).cpu_demand_ghz;
  for (const VmId vm : hosted) {
    const double d = placement.snapshot().vm(vm).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact equality gates the deterministic id tie-break; near-equal demands are legitimately ordered by value
    if (d < best_demand || (d == best_demand && vm < best)) {
      best = vm;
      best_demand = d;
    }
  }
  return best;
}

}  // namespace

double estimated_power_w(const WorkingPlacement& placement) {
  const DataCenterSnapshot& snap = placement.snapshot();
  double total = 0.0;
  for (const ServerSnapshot& server : snap.servers) {
    if (!placement.occupied(server.id)) {
      total += server.sleep_power_w;
      continue;
    }
    const double utilization =
        std::min(1.0, placement.cpu_demand_ghz(server.id) /
                          std::max(1e-9, server.max_capacity_ghz));
    total += server.idle_power_w + (server.max_power_w - server.idle_power_w) * utilization;
  }
  // Shared infrastructure: full rescan of rack/pod occupancy (the fast path
  // keeps these as incremental 0 <-> 1 transition counters).
  for (const RackSnapshot& rack : snap.racks) {
    for (const ServerId member : rack.members) {
      if (member < snap.servers.size() && placement.occupied(member)) {
        total += rack.shared_power_w;
        break;
      }
    }
  }
  for (const PodSnapshot& pod : snap.pods) {
    bool occupied = false;
    for (const RackSnapshot& rack : snap.racks) {
      if (rack.pod != pod.id) continue;
      for (const ServerId member : rack.members) {
        if (member < snap.servers.size() && placement.occupied(member)) {
          occupied = true;
          break;
        }
      }
      if (occupied) break;
    }
    if (occupied) total += pod.shared_power_w;
  }
  return total;
}

MinSlackResult minimum_slack(const WorkingPlacement& placement, ServerId server,
                             std::span<const VmId> candidates,
                             const ConstraintSet& constraints, const MinSlackOptions& options) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  if (server >= snapshot.servers.size()) throw std::out_of_range("minimum_slack: server id");

  SearchState state;
  state.snapshot = &snapshot;
  state.server = &snapshot.server(server);
  state.constraints = &constraints;
  state.options = &options;
  state.epsilon = options.epsilon_ghz;
  state.budget = options.step_budget;

  state.order.assign(candidates.begin(), candidates.end());
  for (const VmId vm : state.order) {
    if (placement.host_of(vm) != datacenter::kNoServer) {
      throw std::invalid_argument("minimum_slack: candidate VM is already placed");
    }
  }
  std::sort(state.order.begin(), state.order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (da != db) return da > db;
    return a < b;
  });

  for (const VmId vm : placement.hosted(server)) {
    state.resident.push_back(&snapshot.vm(vm));
    state.base_demand_ghz += snapshot.vm(vm).cpu_demand_ghz;
  }

  state.best.slack_ghz = state.slack();  // empty selection is the baseline
  state.consider_current();
  if (!state.done) state.dfs(0);
  audit::min_slack_selection(placement, server, candidates, constraints, state.best.selected);
  return state.best;
}

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options) {
  const std::vector<ServerId> order = servers_by_power_efficiency(placement.snapshot());
  return naive::power_aware_consolidation(placement, vms, constraints, options, order);
}

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options,
                                    std::span<const ServerId> server_order) {
  PacResult result;
  std::vector<VmId> remaining(vms.begin(), vms.end());
  if (remaining.empty()) return result;

  for (const ServerId server : server_order) {
    if (remaining.empty()) break;
    MinSlackResult fit = naive::minimum_slack(placement, server, remaining, constraints, options);
    result.min_slack_steps += fit.steps;
    if (fit.selected.empty()) continue;
    for (const VmId vm : fit.selected) {
      placement.place(vm, server);
      result.placed.push_back(vm);
      remaining.erase(std::remove(remaining.begin(), remaining.end(), vm), remaining.end());
    }
    ++result.servers_used;
  }
  result.unplaced = std::move(remaining);
  return result;
}

BudgetedMinSlackResult minimum_slack_budgeted(const WorkingPlacement& placement, ServerId server,
                                              std::span<const VmId> candidates,
                                              std::span<const double> candidate_cost_j,
                                              double budget_j, const ConstraintSet& constraints,
                                              const MinSlackOptions& options) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  if (server >= snapshot.servers.size()) {
    throw std::out_of_range("minimum_slack_budgeted: server id");
  }
  if (candidate_cost_j.size() != candidates.size()) {
    throw std::invalid_argument("minimum_slack_budgeted: one cost per candidate required");
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (placement.host_of(candidates[i]) != datacenter::kNoServer) {
      throw std::invalid_argument("minimum_slack_budgeted: candidate VM is already placed");
    }
    if (!(candidate_cost_j[i] >= 0.0)) {
      throw std::invalid_argument("minimum_slack_budgeted: negative candidate cost");
    }
  }
  const ServerSnapshot& target = snapshot.server(server);

  BudgetedSearchState state;
  state.snapshot = &snapshot;
  state.server = &target;
  state.constraints = &constraints;
  state.options = &options;
  state.epsilon = options.epsilon_ghz;
  state.budget = options.step_budget;
  state.budget_j = budget_j;

  std::vector<std::size_t> perm(candidates.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    const double da = snapshot.vm(candidates[a]).cpu_demand_ghz;
    const double db = snapshot.vm(candidates[b]).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (da != db) return da > db;
    return candidates[a] < candidates[b];
  });
  for (const std::size_t i : perm) {
    state.order.push_back(candidates[i]);
    state.cost_of.push_back(candidate_cost_j[i]);
  }

  for (const VmId vm : placement.hosted(server)) {
    state.resident.push_back(&snapshot.vm(vm));
    state.base_demand_ghz += snapshot.vm(vm).cpu_demand_ghz;
  }
  state.best.slack_ghz = state.slack();

  if (state.best.slack_ghz >= options.epsilon_ghz && !target.failed) state.dfs(0);
  audit::min_slack_selection(placement, server, candidates, constraints, state.best.selected);
  return BudgetedMinSlackResult{std::move(state.best), state.best_cost};
}

PacResult power_aware_consolidation_budgeted(WorkingPlacement& placement,
                                             std::span<const VmId> vms,
                                             const ConstraintSet& constraints,
                                             const MinSlackOptions& options,
                                             std::span<const ServerId> server_order,
                                             const MigrationCostContext& cost) {
  if (cost.model == nullptr) {
    throw std::invalid_argument("power_aware_consolidation_budgeted: cost model required");
  }
  PacResult result;
  std::vector<VmId> remaining(vms.begin(), vms.end());
  if (remaining.empty()) return result;
  const DataCenterSnapshot& snapshot = placement.snapshot();

  const auto cost_to = [&](VmId vm, ServerId server) {
    const ServerId from = vm < cost.origin.size() ? cost.origin[vm] : datacenter::kNoServer;
    if (from == datacenter::kNoServer) return 0.0;
    return cost.model->energy_j(snapshot.vm(vm).memory_mb, snapshot.distance(from, server));
  };

  double spent_j = 0.0;
  for (const ServerId server : server_order) {
    if (remaining.empty()) break;
    // Full rescan for the smallest remaining demand (the fast engine caches
    // it); the skip decision itself is identical.
    double smallest = std::numeric_limits<double>::infinity();
    for (const VmId vm : remaining) {
      smallest = std::min(smallest, snapshot.vm(vm).cpu_demand_ghz);
    }
    if (placement.cpu_slack(server) + 1e-9 < smallest) continue;
    std::vector<double> costs;
    costs.reserve(remaining.size());
    for (const VmId vm : remaining) costs.push_back(cost_to(vm, server));
    const BudgetedMinSlackResult fit = naive::minimum_slack_budgeted(
        placement, server, remaining, costs, cost.budget_j - spent_j, constraints, options);
    result.min_slack_steps += fit.result.steps;
    if (fit.result.selected.empty()) continue;
    spent_j += fit.cost_j;
    for (const VmId vm : fit.result.selected) {
      placement.place(vm, server);
      result.placed.push_back(vm);
      remaining.erase(std::remove(remaining.begin(), remaining.end(), vm), remaining.end());
    }
    ++result.servers_used;
  }
  result.migration_energy_j = spent_j;
  result.unplaced = std::move(remaining);
  return result;
}

FfdResult first_fit_decreasing(WorkingPlacement& placement, std::span<const ServerId> servers,
                               std::span<const VmId> vms, const ConstraintSet& constraints) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  std::vector<VmId> order(vms.begin(), vms.end());
  std::sort(order.begin(), order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (da != db) return da > db;
    return a < b;
  });

  FfdResult result;
  for (const VmId vm : order) {
    bool placed = false;
    for (const ServerId server : servers) {
      const VmId extra[] = {vm};
      if (admits_with(placement, server, extra, constraints)) {
        placement.place(vm, server);
        result.placed.push_back(vm);
        placed = true;
        break;
      }
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  for (const VmId vm : result.placed) {
    audit::server_feasible(placement, placement.host_of(vm), constraints);
  }
  return result;
}

IpacReport ipac(const DataCenterSnapshot& snapshot, const ConstraintSet& constraints,
                const MigrationCostPolicy& policy, const IpacOptions& options,
                const RackAwareOptions& rack) {
  WorkingPlacement wp(snapshot);
  IpacReport report;
  report.occupied_before = wp.occupied_server_count();
  double bytes_approved = 0.0;
  datacenter::MigrationModel migration_model;  // for byte estimates in proposals

  const bool rack_on = rack.enabled && !snapshot.racks.empty();
  std::vector<char> rack_lit(snapshot.racks.size(), 0);
  if (rack_on) {
    for (const ServerSnapshot& server : snapshot.servers) {
      if (server.rack != datacenter::kNoRack && (server.active || !server.hosted.empty())) {
        rack_lit[server.rack] = 1;
      }
    }
  }

  // Target ordering for PAC: active servers by descending power efficiency
  // first, then sleeping ones ("enough inactive servers which will be waken
  // up and used if necessary") — waking a machine is a last resort, since
  // an extra awake server costs idle power immediately. Rack-aware runs put
  // sleepers in lit racks before sleepers in dark racks (see the fast
  // engine for the rationale and the flat-degeneracy argument).
  const std::vector<ServerId> efficiency_order = servers_by_power_efficiency(snapshot);
  std::vector<ServerId> active_first;
  active_first.reserve(efficiency_order.size());
  for (const ServerId s : efficiency_order) {
    if (snapshot.server(s).active || !snapshot.server(s).hosted.empty()) {
      active_first.push_back(s);
    }
  }
  std::vector<ServerId> sleepers;
  for (const ServerId s : efficiency_order) {
    if (!snapshot.server(s).active && snapshot.server(s).hosted.empty()) {
      sleepers.push_back(s);
    }
  }
  if (rack_on) {
    std::stable_partition(sleepers.begin(), sleepers.end(), [&](ServerId s) {
      const RackId r = snapshot.server(s).rack;
      return r != datacenter::kNoRack && rack_lit[r] != 0;
    });
  }
  active_first.insert(active_first.end(), sleepers.begin(), sleepers.end());

  // ---- Step 0: pick up homeless VMs --------------------------------------
  std::vector<VmId> migration_list;
  for (const VmSnapshot& vm : snapshot.vms) {
    if (vm.retired) continue;  // scale-in tombstone: left the fleet on purpose
    if (wp.host_of(vm.id) == datacenter::kNoServer) migration_list.push_back(vm.id);
  }
  if (!migration_list.empty()) {
    util::Log(util::LogLevel::kInfo, "ipac")
        << migration_list.size() << " unplaced VM(s) queued for re-placement";
  }

  // ---- Step 1: overload relief -------------------------------------------
  for (const ServerSnapshot& server : snapshot.servers) {
    while (!wp.hosted(server.id).empty() && !feasible(wp, server.id, constraints)) {
      const VmId victim = smallest_vm(wp, server.id);
      wp.remove(victim);
      migration_list.push_back(victim);
    }
  }
  if (!migration_list.empty()) {
    const PacResult pac = naive::power_aware_consolidation(wp, migration_list, constraints,
                                                           options.min_slack, active_first);
    report.min_slack_steps += pac.min_slack_steps;
    report.overload_moves = pac.placed.size();
    for (const VmId vm : pac.placed) {
      bytes_approved += migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
      if (rack_on) {
        // Relief bypasses the gates but still draws down the plan budget.
        const ServerId relief_origin = wp.original_host(vm);
        if (relief_origin != datacenter::kNoServer) {
          report.migration_energy_j += rack.cost.energy_j(
              snapshot.vm(vm).memory_mb, snapshot.distance(relief_origin, wp.host_of(vm)));
        }
      }
    }
    for (const VmId vm : pac.unplaced) {
      util::Log(util::LogLevel::kWarn, "ipac")
          << "overloaded VM " << vm << " could not be re-placed";
    }
    migration_list = pac.unplaced;
  }
  std::vector<VmId> unplaced = std::move(migration_list);

  // ---- Step 2: consolidation rounds --------------------------------------
  std::vector<ServerId> donors;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (wp.occupied(server.id)) donors.push_back(server.id);
  }
  if (rack_on) {
    // Rack occupancy by full member rescan (the fast engine keeps per-rack
    // counters); kNoRack servers count as a rack of one.
    const auto occupancy = [&](ServerId s) -> std::uint32_t {
      const RackId r = snapshot.server(s).rack;
      if (r == datacenter::kNoRack) return 1;
      std::uint32_t count = 0;
      for (const ServerId member : snapshot.racks[r].members) {
        if (member < snapshot.servers.size() && wp.occupied(member)) ++count;
      }
      return count;
    };
    std::sort(donors.begin(), donors.end(), [&](ServerId a, ServerId b) {
      const std::uint32_t oa = occupancy(a);
      const std::uint32_t ob = occupancy(b);
      if (oa != ob) return oa < ob;
      const double ea = snapshot.server(a).power_efficiency_ghz_per_w;
      const double eb = snapshot.server(b).power_efficiency_ghz_per_w;
      // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
      if (ea != eb) return ea < eb;
      return a < b;
    });
  } else {
    std::sort(donors.begin(), donors.end(), [&](ServerId a, ServerId b) {
      const double ea = snapshot.server(a).power_efficiency_ghz_per_w;
      const double eb = snapshot.server(b).power_efficiency_ghz_per_w;
      // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
      if (ea != eb) return ea < eb;
      return a < b;
    });
  }

  std::size_t active_baseline = 0;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (server.active || !server.hosted.empty()) ++active_baseline;
  }

  for (const ServerId donor : donors) {
    if (report.rounds_attempted >= options.max_rounds) break;
    if (!wp.occupied(donor)) continue;  // already emptied by an earlier round
    ++report.rounds_attempted;

    // Evacuate the donor.
    std::vector<VmId> evacuated(wp.hosted(donor).begin(), wp.hosted(donor).end());
    const double power_before_round = naive::estimated_power_w(wp);
    for (const VmId vm : evacuated) wp.remove(vm);

    std::vector<ServerId> targets;
    targets.reserve(active_first.size() - 1);
    for (const ServerId s : active_first) {
      if (s != donor) targets.push_back(s);
    }

    const PacResult pac = naive::power_aware_consolidation(wp, evacuated, constraints,
                                                           options.min_slack, targets);
    report.min_slack_steps += pac.min_slack_steps;

    bool accept = pac.unplaced.empty() &&
                  (wp.occupied_server_count() < active_baseline ||
                   naive::estimated_power_w(wp) < power_before_round - 1e-9);

    // Rack-aware gates between baseline acceptance and policy, exactly as
    // in the fast engine: gate rejections skip to the next donor, baseline
    // and policy rejections end the loop.
    bool gate_reject = false;
    double round_cost_j = 0.0;
    if (accept && rack_on) {
      for (const VmId vm : evacuated) {
        round_cost_j += rack.cost.energy_j(snapshot.vm(vm).memory_mb,
                                           snapshot.distance(donor, wp.host_of(vm)));
      }
      const double benefit_j =
          std::max(0.0, power_before_round - naive::estimated_power_w(wp)) *
          rack.benefit_horizon_s;
      if (report.migration_energy_j + round_cost_j >
          rack.migration_energy_budget_j + 1e-9) {
        accept = false;
        gate_reject = true;
        ++report.rounds_rejected_by_budget;
      } else if (benefit_j + 1e-9 < round_cost_j) {
        accept = false;
        gate_reject = true;
        ++report.rounds_rejected_by_cost;
      }
    }

    if (accept) {
      const double benefit_per_move =
          std::max(0.0, power_before_round - naive::estimated_power_w(wp)) /
          static_cast<double>(evacuated.size());
      double round_bytes = 0.0;
      double round_cost_so_far_j = 0.0;
      for (const VmId vm : evacuated) {
        MigrationProposal proposal;
        proposal.vm = vm;
        proposal.from = donor;
        proposal.to = wp.host_of(vm);
        proposal.estimated_benefit_w = benefit_per_move;
        proposal.bytes = migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
        proposal.bytes_already_approved = bytes_approved + round_bytes;
        if (rack_on) {
          proposal.distance = snapshot.distance(donor, proposal.to);
          proposal.cost_j =
              rack.cost.energy_j(snapshot.vm(vm).memory_mb, proposal.distance);
          proposal.cost_already_approved_j =
              report.migration_energy_j + round_cost_so_far_j;
          proposal.estimated_benefit_j = benefit_per_move * rack.benefit_horizon_s;
        }
        if (!policy.allow(snapshot, proposal)) {
          accept = false;
          ++report.rounds_rejected_by_policy;
          break;
        }
        round_bytes += proposal.bytes;
        round_cost_so_far_j += proposal.cost_j;
      }
      if (accept) {
        bytes_approved += round_bytes;
        report.migration_energy_j += round_cost_j;
      }
    }

    if (accept) {
      ++report.rounds_accepted;
      report.consolidation_moves += evacuated.size();
      active_baseline = wp.occupied_server_count();
      continue;  // try the next least-efficient donor
    }

    // Roll back the round; gate rejections try the next donor, anything
    // else stops.
    for (const VmId vm : evacuated) {
      if (wp.host_of(vm) != datacenter::kNoServer) wp.remove(vm);
      wp.place(vm, donor);
    }
    if (gate_reject) continue;
    break;
  }

  if (rack_on) {
    for (const RackSnapshot& r : snapshot.racks) {
      bool was_occupied = false;
      bool now_occupied = false;
      for (const ServerId member : r.members) {
        if (member >= snapshot.servers.size()) continue;
        if (!snapshot.server(member).hosted.empty()) was_occupied = true;
        if (wp.occupied(member)) now_occupied = true;
      }
      if (was_occupied && !now_occupied) ++report.racks_emptied;
    }
  }

  report.occupied_after = wp.occupied_server_count();
  report.plan = wp.plan(unplaced);
  audit::plan(snapshot, report.plan, constraints);
  return report;
}

PMapperReport pmapper(const DataCenterSnapshot& snapshot, const ConstraintSet& constraints,
                      const RackAwareOptions& rack) {
  PMapperReport report;
  const bool rack_on = rack.enabled && !snapshot.racks.empty();

  // ---- Phase 1: target allocation on a phantom (emptied) copy -------------
  DataCenterSnapshot phantom = snapshot;
  for (ServerSnapshot& server : phantom.servers) server.hosted.clear();
  WorkingPlacement target(phantom);
  {
    const std::vector<ServerId> order = servers_by_power_efficiency(phantom);
    std::vector<VmId> all;
    all.reserve(phantom.vms.size());
    for (const VmSnapshot& vm : phantom.vms) all.push_back(vm.id);
    (void)naive::first_fit_decreasing(target, order, all, constraints);
  }
  report.target_demand_ghz.resize(snapshot.servers.size(), 0.0);
  for (const ServerSnapshot& server : snapshot.servers) {
    report.target_demand_ghz[server.id] = target.cpu_demand_ghz(server.id);
  }

  // ---- Phase 2: donors shed their smallest VMs; receivers absorb ----------
  WorkingPlacement wp(snapshot);
  report.occupied_before = wp.occupied_server_count();

  std::vector<ServerId> receivers;
  std::vector<VmId> migration_list;
  constexpr double kEps = 1e-9;
  for (const ServerSnapshot& server : snapshot.servers) {
    const double current = wp.cpu_demand_ghz(server.id);
    const double target_demand = report.target_demand_ghz[server.id];
    if (target_demand > current + kEps) {
      receivers.push_back(server.id);
    } else if (target_demand < current - kEps) {
      // Donor: shed the smallest VMs until at (or below) target.
      std::vector<VmId> hosted(wp.hosted(server.id).begin(), wp.hosted(server.id).end());
      std::sort(hosted.begin(), hosted.end(), [&](VmId a, VmId b) {
        const double da = snapshot.vm(a).cpu_demand_ghz;
        const double db = snapshot.vm(b).cpu_demand_ghz;
        // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
        if (da != db) return da < db;
        return a < b;
      });
      for (const VmId vm : hosted) {
        if (wp.cpu_demand_ghz(server.id) <= target_demand + kEps) break;
        wp.remove(vm);
        migration_list.push_back(vm);
      }
    }
  }

  std::sort(receivers.begin(), receivers.end(), [&](ServerId a, ServerId b) {
    const double ea = snapshot.server(a).power_efficiency_ghz_per_w;
    const double eb = snapshot.server(b).power_efficiency_ghz_per_w;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (ea != eb) return ea > eb;
    return a < b;
  });

  std::vector<ServerId> origin(snapshot.vms.size(), datacenter::kNoServer);
  for (const ServerSnapshot& server : snapshot.servers) {
    for (const VmId vm : server.hosted) origin[vm] = server.id;
  }

  std::vector<VmId> order = migration_list;
  std::sort(order.begin(), order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    // vdc-lint: float-eq-ok exact tie-break in a deterministic sort comparator; a tolerance would break strict weak ordering
    if (da != db) return da > db;
    return a < b;
  });

  // Same gate as the fast engine, evaluated only after admission; benefit
  // uses the shared closed-form placement_delta_w so thresholds compare
  // bit-identically across engines.
  bool gate_blocked = false;
  const auto gate_allows = [&](VmId vm, ServerId receiver) {
    if (!rack_on || origin[vm] == datacenter::kNoServer) return true;
    const VmSnapshot& info = snapshot.vm(vm);
    const double cost_j =
        rack.cost.energy_j(info.memory_mb, snapshot.distance(origin[vm], receiver));
    if (report.migration_energy_j + cost_j > rack.migration_energy_budget_j + 1e-9) {
      gate_blocked = true;
      return false;
    }
    const double benefit_w = placement_delta_w(wp, origin[vm], info.cpu_demand_ghz) -
                             placement_delta_w(wp, receiver, info.cpu_demand_ghz);
    if (benefit_w * rack.benefit_horizon_s + 1e-9 < cost_j) {
      gate_blocked = true;
      return false;
    }
    report.migration_energy_j += cost_j;
    return true;
  };

  std::vector<VmId> unplaced;
  for (const VmId vm : order) {
    bool placed = false;
    gate_blocked = false;
    for (const ServerId receiver : receivers) {
      const VmId extra[] = {vm};
      const bool fits_target =
          wp.cpu_demand_ghz(receiver) + snapshot.vm(vm).cpu_demand_ghz <=
          report.target_demand_ghz[receiver] + kEps;
      if (fits_target && admits_with(wp, receiver, extra, constraints) &&
          gate_allows(vm, receiver)) {
        wp.place(vm, receiver);
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Second chance ignoring the target cap (constraints still hold).
      for (const ServerId receiver : receivers) {
        const VmId extra[] = {vm};
        if (admits_with(wp, receiver, extra, constraints) && gate_allows(vm, receiver)) {
          wp.place(vm, receiver);
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      if (gate_blocked) ++report.moves_rejected_by_budget;
      if (origin[vm] != datacenter::kNoServer) {
        wp.place(vm, origin[vm]);
      } else {
        unplaced.push_back(vm);
      }
    }
  }

  report.occupied_after = wp.occupied_server_count();
  report.plan = wp.plan(unplaced);
  report.moves = report.plan.moves.size();
  audit::plan(snapshot, report.plan, constraints);
  return report;
}

}  // namespace vdc::consolidate::naive
