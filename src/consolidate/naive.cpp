#include "consolidate/naive.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "check/consolidate_audit.hpp"
#include "util/log.hpp"

namespace vdc::consolidate::naive {

namespace {

/// The original WorkingPlacement::admits_with: materializes the resident
/// pointer list on every call (the allocation the fast engine eliminated).
bool admits_with(const WorkingPlacement& placement, ServerId server,
                 std::span<const VmId> extra, const ConstraintSet& constraints) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  std::vector<const VmSnapshot*> vms;
  vms.reserve(placement.hosted(server).size() + extra.size());
  for (const VmId vm : placement.hosted(server)) vms.push_back(&snapshot.vm(vm));
  for (const VmId vm : extra) vms.push_back(&snapshot.vm(vm));
  return constraints.admits(snapshot.server(server), vms);
}

bool feasible(const WorkingPlacement& placement, ServerId server,
              const ConstraintSet& constraints) {
  return admits_with(placement, server, {}, constraints);
}

struct SearchState {
  const DataCenterSnapshot* snapshot;
  const ServerSnapshot* server;
  const ConstraintSet* constraints;
  std::vector<VmId> order;                  // candidates, largest demand first
  std::vector<const VmSnapshot*> resident;  // existing + currently selected
  std::vector<VmId> selected;
  double selected_demand = 0.0;
  double base_demand = 0.0;  // demand of VMs already on the server

  MinSlackResult best;
  double epsilon;
  std::size_t budget;
  const MinSlackOptions* options;
  bool done = false;

  [[nodiscard]] double slack() const noexcept {
    return server->max_capacity_ghz - base_demand - selected_demand;
  }

  void consider_current() {
    const double s = slack();
    if (s < best.slack_ghz - 1e-12) {
      best.slack_ghz = s;
      best.selected = selected;
    }
    if (best.slack_ghz < epsilon) done = true;  // line 4-5 of Algorithm 1
  }

  void dfs(std::size_t start) {
    if (done) return;
    for (std::size_t i = start; i < order.size(); ++i) {
      if (done) return;
      // A "step" is one candidate-placement attempt (the unit of work).
      ++best.steps;
      if (best.steps >= budget) {  // lines 15-17: escalate epsilon
        if (best.escalations >= options->max_escalations) {
          done = true;
          return;
        }
        ++best.escalations;
        epsilon *= options->epsilon_escalation;
        budget += options->step_budget;
        if (best.slack_ghz < epsilon) {
          done = true;
          return;
        }
      }
      const VmId vm = order[i];
      const VmSnapshot& info = snapshot->vm(vm);
      // Symmetry pruning (standard MBS): identical siblings explore
      // identical subtrees — try only the first of an equal run per level.
      if (i > start) {
        const VmSnapshot& prev = snapshot->vm(order[i - 1]);
        if (prev.cpu_demand_ghz == info.cpu_demand_ghz && prev.memory_mb == info.memory_mb) {
          continue;
        }
      }
      // CPU-slack bound: a VM larger than the remaining raw-capacity slack
      // would push total demand past the server's capacity, which can only
      // worsen the slack objective — prune before the full constraint
      // evaluation.
      if (info.cpu_demand_ghz > slack() + 1e-9) continue;
      resident.push_back(&info);  // line 2: pack VM into S
      if (constraints->admits(*server, resident)) {  // line 3
        selected.push_back(vm);
        selected_demand += info.cpu_demand_ghz;
        consider_current();  // lines 11-14
        if (!done) dfs(i + 1);  // line 7: recurse on the remaining VMs
        selected_demand -= info.cpu_demand_ghz;
        selected.pop_back();
      }
      resident.pop_back();  // line 9: remove VM from S
    }
  }
};

/// Smallest-CPU-demand VM on the server (the cheapest to evict).
VmId smallest_vm(const WorkingPlacement& placement, ServerId server) {
  const auto hosted = placement.hosted(server);
  VmId best = hosted.front();
  double best_demand = placement.snapshot().vm(best).cpu_demand_ghz;
  for (const VmId vm : hosted) {
    const double d = placement.snapshot().vm(vm).cpu_demand_ghz;
    if (d < best_demand || (d == best_demand && vm < best)) {
      best = vm;
      best_demand = d;
    }
  }
  return best;
}

}  // namespace

double estimated_power_w(const WorkingPlacement& placement) {
  const DataCenterSnapshot& snap = placement.snapshot();
  double total = 0.0;
  for (const ServerSnapshot& server : snap.servers) {
    if (!placement.occupied(server.id)) {
      total += server.sleep_power_w;
      continue;
    }
    const double utilization =
        std::min(1.0, placement.cpu_demand(server.id) /
                          std::max(1e-9, server.max_capacity_ghz));
    total += server.idle_power_w + (server.max_power_w - server.idle_power_w) * utilization;
  }
  return total;
}

MinSlackResult minimum_slack(const WorkingPlacement& placement, ServerId server,
                             std::span<const VmId> candidates,
                             const ConstraintSet& constraints, const MinSlackOptions& options) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  if (server >= snapshot.servers.size()) throw std::out_of_range("minimum_slack: server id");

  SearchState state;
  state.snapshot = &snapshot;
  state.server = &snapshot.server(server);
  state.constraints = &constraints;
  state.options = &options;
  state.epsilon = options.epsilon_ghz;
  state.budget = options.step_budget;

  state.order.assign(candidates.begin(), candidates.end());
  for (const VmId vm : state.order) {
    if (placement.host_of(vm) != datacenter::kNoServer) {
      throw std::invalid_argument("minimum_slack: candidate VM is already placed");
    }
  }
  std::sort(state.order.begin(), state.order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    if (da != db) return da > db;
    return a < b;
  });

  for (const VmId vm : placement.hosted(server)) {
    state.resident.push_back(&snapshot.vm(vm));
    state.base_demand += snapshot.vm(vm).cpu_demand_ghz;
  }

  state.best.slack_ghz = state.slack();  // empty selection is the baseline
  state.consider_current();
  if (!state.done) state.dfs(0);
  audit::min_slack_selection(placement, server, candidates, constraints, state.best.selected);
  return state.best;
}

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options) {
  const std::vector<ServerId> order = servers_by_power_efficiency(placement.snapshot());
  return naive::power_aware_consolidation(placement, vms, constraints, options, order);
}

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options,
                                    std::span<const ServerId> server_order) {
  PacResult result;
  std::vector<VmId> remaining(vms.begin(), vms.end());
  if (remaining.empty()) return result;

  for (const ServerId server : server_order) {
    if (remaining.empty()) break;
    MinSlackResult fit = naive::minimum_slack(placement, server, remaining, constraints, options);
    result.min_slack_steps += fit.steps;
    if (fit.selected.empty()) continue;
    for (const VmId vm : fit.selected) {
      placement.place(vm, server);
      result.placed.push_back(vm);
      remaining.erase(std::remove(remaining.begin(), remaining.end(), vm), remaining.end());
    }
    ++result.servers_used;
  }
  result.unplaced = std::move(remaining);
  return result;
}

FfdResult first_fit_decreasing(WorkingPlacement& placement, std::span<const ServerId> servers,
                               std::span<const VmId> vms, const ConstraintSet& constraints) {
  const DataCenterSnapshot& snapshot = placement.snapshot();
  std::vector<VmId> order(vms.begin(), vms.end());
  std::sort(order.begin(), order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    if (da != db) return da > db;
    return a < b;
  });

  FfdResult result;
  for (const VmId vm : order) {
    bool placed = false;
    for (const ServerId server : servers) {
      const VmId extra[] = {vm};
      if (admits_with(placement, server, extra, constraints)) {
        placement.place(vm, server);
        result.placed.push_back(vm);
        placed = true;
        break;
      }
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  for (const VmId vm : result.placed) {
    audit::server_feasible(placement, placement.host_of(vm), constraints);
  }
  return result;
}

IpacReport ipac(const DataCenterSnapshot& snapshot, const ConstraintSet& constraints,
                const MigrationCostPolicy& policy, const IpacOptions& options) {
  WorkingPlacement wp(snapshot);
  IpacReport report;
  report.occupied_before = wp.occupied_server_count();
  double bytes_approved = 0.0;
  datacenter::MigrationModel migration_model;  // for byte estimates in proposals

  // Target ordering for PAC: active servers by descending power efficiency
  // first, then sleeping ones ("enough inactive servers which will be waken
  // up and used if necessary") — waking a machine is a last resort, since
  // an extra awake server costs idle power immediately.
  const std::vector<ServerId> efficiency_order = servers_by_power_efficiency(snapshot);
  std::vector<ServerId> active_first;
  active_first.reserve(efficiency_order.size());
  for (const ServerId s : efficiency_order) {
    if (snapshot.server(s).active || !snapshot.server(s).hosted.empty()) {
      active_first.push_back(s);
    }
  }
  for (const ServerId s : efficiency_order) {
    if (!snapshot.server(s).active && snapshot.server(s).hosted.empty()) {
      active_first.push_back(s);
    }
  }

  // ---- Step 0: pick up homeless VMs --------------------------------------
  std::vector<VmId> migration_list;
  for (const VmSnapshot& vm : snapshot.vms) {
    if (wp.host_of(vm.id) == datacenter::kNoServer) migration_list.push_back(vm.id);
  }
  if (!migration_list.empty()) {
    util::Log(util::LogLevel::kInfo, "ipac")
        << migration_list.size() << " unplaced VM(s) queued for re-placement";
  }

  // ---- Step 1: overload relief -------------------------------------------
  for (const ServerSnapshot& server : snapshot.servers) {
    while (!wp.hosted(server.id).empty() && !feasible(wp, server.id, constraints)) {
      const VmId victim = smallest_vm(wp, server.id);
      wp.remove(victim);
      migration_list.push_back(victim);
    }
  }
  if (!migration_list.empty()) {
    const PacResult pac = naive::power_aware_consolidation(wp, migration_list, constraints,
                                                           options.min_slack, active_first);
    report.min_slack_steps += pac.min_slack_steps;
    report.overload_moves = pac.placed.size();
    for (const VmId vm : pac.placed) {
      bytes_approved += migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
    }
    for (const VmId vm : pac.unplaced) {
      util::Log(util::LogLevel::kWarn, "ipac")
          << "overloaded VM " << vm << " could not be re-placed";
    }
    migration_list = pac.unplaced;
  }
  std::vector<VmId> unplaced = std::move(migration_list);

  // ---- Step 2: consolidation rounds --------------------------------------
  std::vector<ServerId> donors;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (wp.occupied(server.id)) donors.push_back(server.id);
  }
  std::sort(donors.begin(), donors.end(), [&](ServerId a, ServerId b) {
    const double ea = snapshot.server(a).power_efficiency;
    const double eb = snapshot.server(b).power_efficiency;
    if (ea != eb) return ea < eb;
    return a < b;
  });

  std::size_t active_baseline = 0;
  for (const ServerSnapshot& server : snapshot.servers) {
    if (server.active || !server.hosted.empty()) ++active_baseline;
  }

  for (const ServerId donor : donors) {
    if (report.rounds_attempted >= options.max_rounds) break;
    if (!wp.occupied(donor)) continue;  // already emptied by an earlier round
    ++report.rounds_attempted;

    // Evacuate the donor.
    std::vector<VmId> evacuated(wp.hosted(donor).begin(), wp.hosted(donor).end());
    const double power_before_round = naive::estimated_power_w(wp);
    for (const VmId vm : evacuated) wp.remove(vm);

    std::vector<ServerId> targets;
    targets.reserve(active_first.size() - 1);
    for (const ServerId s : active_first) {
      if (s != donor) targets.push_back(s);
    }

    const PacResult pac = naive::power_aware_consolidation(wp, evacuated, constraints,
                                                           options.min_slack, targets);
    report.min_slack_steps += pac.min_slack_steps;

    bool accept = pac.unplaced.empty() &&
                  (wp.occupied_server_count() < active_baseline ||
                   naive::estimated_power_w(wp) < power_before_round - 1e-9);
    if (accept) {
      const double benefit_per_move =
          std::max(0.0, power_before_round - naive::estimated_power_w(wp)) /
          static_cast<double>(evacuated.size());
      double round_bytes = 0.0;
      for (const VmId vm : evacuated) {
        MigrationProposal proposal;
        proposal.vm = vm;
        proposal.from = donor;
        proposal.to = wp.host_of(vm);
        proposal.estimated_benefit_w = benefit_per_move;
        proposal.bytes = migration_model.bytes_moved(snapshot.vm(vm).memory_mb);
        proposal.bytes_already_approved = bytes_approved + round_bytes;
        if (!policy.allow(snapshot, proposal)) {
          accept = false;
          ++report.rounds_rejected_by_policy;
          break;
        }
        round_bytes += proposal.bytes;
      }
      if (accept) bytes_approved += round_bytes;
    }

    if (accept) {
      ++report.rounds_accepted;
      report.consolidation_moves += evacuated.size();
      active_baseline = wp.occupied_server_count();
      continue;  // try the next least-efficient donor
    }

    // Roll back the round and stop.
    for (const VmId vm : evacuated) {
      if (wp.host_of(vm) != datacenter::kNoServer) wp.remove(vm);
      wp.place(vm, donor);
    }
    break;
  }

  report.occupied_after = wp.occupied_server_count();
  report.plan = wp.plan(unplaced);
  audit::plan(snapshot, report.plan, constraints);
  return report;
}

PMapperReport pmapper(const DataCenterSnapshot& snapshot, const ConstraintSet& constraints) {
  PMapperReport report;

  // ---- Phase 1: target allocation on a phantom (emptied) copy -------------
  DataCenterSnapshot phantom = snapshot;
  for (ServerSnapshot& server : phantom.servers) server.hosted.clear();
  WorkingPlacement target(phantom);
  {
    const std::vector<ServerId> order = servers_by_power_efficiency(phantom);
    std::vector<VmId> all;
    all.reserve(phantom.vms.size());
    for (const VmSnapshot& vm : phantom.vms) all.push_back(vm.id);
    (void)naive::first_fit_decreasing(target, order, all, constraints);
  }
  report.target_demand_ghz.resize(snapshot.servers.size(), 0.0);
  for (const ServerSnapshot& server : snapshot.servers) {
    report.target_demand_ghz[server.id] = target.cpu_demand(server.id);
  }

  // ---- Phase 2: donors shed their smallest VMs; receivers absorb ----------
  WorkingPlacement wp(snapshot);
  report.occupied_before = wp.occupied_server_count();

  std::vector<ServerId> receivers;
  std::vector<VmId> migration_list;
  constexpr double kEps = 1e-9;
  for (const ServerSnapshot& server : snapshot.servers) {
    const double current = wp.cpu_demand(server.id);
    const double target_demand = report.target_demand_ghz[server.id];
    if (target_demand > current + kEps) {
      receivers.push_back(server.id);
    } else if (target_demand < current - kEps) {
      // Donor: shed the smallest VMs until at (or below) target.
      std::vector<VmId> hosted(wp.hosted(server.id).begin(), wp.hosted(server.id).end());
      std::sort(hosted.begin(), hosted.end(), [&](VmId a, VmId b) {
        const double da = snapshot.vm(a).cpu_demand_ghz;
        const double db = snapshot.vm(b).cpu_demand_ghz;
        if (da != db) return da < db;
        return a < b;
      });
      for (const VmId vm : hosted) {
        if (wp.cpu_demand(server.id) <= target_demand + kEps) break;
        wp.remove(vm);
        migration_list.push_back(vm);
      }
    }
  }

  std::sort(receivers.begin(), receivers.end(), [&](ServerId a, ServerId b) {
    const double ea = snapshot.server(a).power_efficiency;
    const double eb = snapshot.server(b).power_efficiency;
    if (ea != eb) return ea > eb;
    return a < b;
  });

  std::vector<ServerId> origin(snapshot.vms.size(), datacenter::kNoServer);
  for (const ServerSnapshot& server : snapshot.servers) {
    for (const VmId vm : server.hosted) origin[vm] = server.id;
  }

  std::vector<VmId> order = migration_list;
  std::sort(order.begin(), order.end(), [&](VmId a, VmId b) {
    const double da = snapshot.vm(a).cpu_demand_ghz;
    const double db = snapshot.vm(b).cpu_demand_ghz;
    if (da != db) return da > db;
    return a < b;
  });

  std::vector<VmId> unplaced;
  for (const VmId vm : order) {
    bool placed = false;
    for (const ServerId receiver : receivers) {
      const VmId extra[] = {vm};
      const bool fits_target =
          wp.cpu_demand(receiver) + snapshot.vm(vm).cpu_demand_ghz <=
          report.target_demand_ghz[receiver] + kEps;
      if (fits_target && admits_with(wp, receiver, extra, constraints)) {
        wp.place(vm, receiver);
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Second chance ignoring the target cap (constraints still hold).
      for (const ServerId receiver : receivers) {
        const VmId extra[] = {vm};
        if (admits_with(wp, receiver, extra, constraints)) {
          wp.place(vm, receiver);
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      if (origin[vm] != datacenter::kNoServer) {
        wp.place(vm, origin[vm]);
      } else {
        unplaced.push_back(vm);
      }
    }
  }

  report.occupied_after = wp.occupied_server_count();
  report.plan = wp.plan(unplaced);
  report.moves = report.plan.moves.size();
  audit::plan(snapshot, report.plan, constraints);
  return report;
}

}  // namespace vdc::consolidate::naive
