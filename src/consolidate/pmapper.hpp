// pMapper baseline (Verma, Ahuja, Neogi — Middleware'08), reimplemented
// from the description in Section VII of the paper:
//
//   Phase 1: sort servers by power efficiency and compute a *target*
//   allocation by first-fit placing all VMs, most-efficient server first
//   (no VM actually moves in this phase).
//   Phase 2: servers whose target utilization exceeds their current one
//   are receivers; servers with lower targets are donors. Each donor
//   contributes its smallest VMs to a migration list until it is at its
//   target; the list is then placed onto the receivers with first-fit
//   decreasing.
#pragma once

#include "consolidate/constraints.hpp"
#include "consolidate/snapshot.hpp"
#include "consolidate/topology_cost.hpp"

namespace vdc::consolidate {

struct PMapperReport {
  PlacementPlan plan;
  std::size_t occupied_before = 0;
  std::size_t occupied_after = 0;
  std::size_t moves = 0;
  /// Phase-1 target CPU demand per server (GHz), indexed by ServerId.
  std::vector<double> target_demand_ghz;
  // Rack-aware accounting (0 when RackAwareOptions is disabled):
  /// Total migration energy (J) of the accepted moves.
  double migration_energy_j = 0.0;
  /// Moves that fell back to their origin because every receiver that
  /// admitted them was vetoed by the budget or net-energy gate.
  std::size_t moves_rejected_by_budget = 0;
};

/// With `rack.enabled` on a topology-carrying snapshot, phase-2 placements
/// are gated: a receiver that a VM fits on is still refused when the move's
/// distance-dependent migration energy would overrun the plan budget or
/// exceed its net benefit (closed-form placement_delta_w at origin minus at
/// receiver, over `rack.benefit_horizon_s`). Gated VMs stay on their origin
/// — a free non-move. Receiver order is never changed, so flat plans (and
/// disabled runs) are move-for-move identical to the pre-topology engine.
[[nodiscard]] PMapperReport pmapper(const DataCenterSnapshot& snapshot,
                                    const ConstraintSet& constraints,
                                    const RackAwareOptions& rack = {});

}  // namespace vdc::consolidate
