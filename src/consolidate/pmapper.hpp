// pMapper baseline (Verma, Ahuja, Neogi — Middleware'08), reimplemented
// from the description in Section VII of the paper:
//
//   Phase 1: sort servers by power efficiency and compute a *target*
//   allocation by first-fit placing all VMs, most-efficient server first
//   (no VM actually moves in this phase).
//   Phase 2: servers whose target utilization exceeds their current one
//   are receivers; servers with lower targets are donors. Each donor
//   contributes its smallest VMs to a migration list until it is at its
//   target; the list is then placed onto the receivers with first-fit
//   decreasing.
#pragma once

#include "consolidate/constraints.hpp"
#include "consolidate/snapshot.hpp"

namespace vdc::consolidate {

struct PMapperReport {
  PlacementPlan plan;
  std::size_t occupied_before = 0;
  std::size_t occupied_after = 0;
  std::size_t moves = 0;
  /// Phase-1 target CPU demand per server (GHz), indexed by ServerId.
  std::vector<double> target_demand_ghz;
};

[[nodiscard]] PMapperReport pmapper(const DataCenterSnapshot& snapshot,
                                    const ConstraintSet& constraints);

}  // namespace vdc::consolidate
