// First-Fit Decreasing placement — the building block of the pMapper
// baseline (Verma et al.), kept separate so the packing-quality ablation
// can compare it against Minimum Slack directly.
#pragma once

#include <span>

#include "consolidate/constraints.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate {

struct FfdResult {
  std::vector<VmId> placed;
  std::vector<VmId> unplaced;
};

/// Places `vms` (currently unplaced) onto `servers`, trying servers in the
/// given order, VMs in decreasing CPU-demand order. Mutates `placement`.
FfdResult first_fit_decreasing(WorkingPlacement& placement, std::span<const ServerId> servers,
                               std::span<const VmId> vms, const ConstraintSet& constraints);

/// Servers sorted by descending power efficiency (the order in which both
/// pMapper's phase 1 and PAC walk the server list).
[[nodiscard]] std::vector<ServerId> servers_by_power_efficiency(
    const DataCenterSnapshot& snapshot);

}  // namespace vdc::consolidate
