// Power Aware Consolidation (PAC, Section V): walk the servers from most to
// least power-efficient; on each, run Minimum Slack over the remaining
// unallocated VMs and commit the best-fitting subset; stop when every VM is
// placed. Greedy in server order, near-optimal per server via Algorithm 1.
#pragma once

#include <span>

#include "consolidate/minimum_slack.hpp"
#include "consolidate/slack_index.hpp"
#include "consolidate/topology_cost.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate {

struct PacResult {
  std::vector<VmId> placed;
  std::vector<VmId> unplaced;  ///< no server could take them
  std::size_t servers_used = 0;  ///< servers that received at least one VM
  std::size_t min_slack_steps = 0;  ///< total DFS work across servers
  /// Migration energy (J) of the placements made; 0 for unbudgeted runs.
  double migration_energy_j = 0.0;
};

/// Consolidates `vms` (currently unplaced in `placement`) onto the servers.
/// Mutates `placement`. Servers already hosting VMs participate: their
/// residents count toward the constraints, exactly as in the paper ("given
/// a list of servers (some servers are possibly not empty)").
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options = {});

/// Variant with an explicit server visiting order (IPAC uses it to exclude
/// the server being evacuated from the target list).
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options,
                                    std::span<const ServerId> server_order);

/// Variant driven by a SlackIndex built over the visiting order: servers
/// whose raw CPU slack cannot take even the smallest remaining candidate
/// are skipped in O(log n) instead of each paying an (empty) Minimum Slack
/// call. The index must be registered as the placement's slack observer so
/// placements keep it current; masked servers (IPAC's donor) are never
/// visited. Plan-identical to the linear walk — see SlackIndex's header
/// for the argument.
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options, const SlackIndex& index);

/// What a budgeted PAC run needs to price a move: where each VM comes from,
/// the distance-dependent energy model, and how much energy the plan may
/// still spend. Placing a VM with no origin (kNoServer — crash-evicted or
/// brand new) copies nothing and costs 0 J.
struct MigrationCostContext {
  const MigrationCostModel* model = nullptr;
  /// Indexed by VmId: the host each VM migrates away from.
  std::span<const ServerId> origin;
  double budget_j = 0.0;
};

/// Budgeted, rack-aware PAC: the per-server Minimum Slack runs are the
/// budgeted variant, each seeing the energy left after earlier selections,
/// so a plan never spends past the budget. Reference mirror:
/// naive::power_aware_consolidation_budgeted.
PacResult power_aware_consolidation_budgeted(WorkingPlacement& placement,
                                             std::span<const VmId> vms,
                                             const ConstraintSet& constraints,
                                             const MinSlackOptions& options,
                                             std::span<const ServerId> server_order,
                                             const MigrationCostContext& cost);

}  // namespace vdc::consolidate
