// Power Aware Consolidation (PAC, Section V): walk the servers from most to
// least power-efficient; on each, run Minimum Slack over the remaining
// unallocated VMs and commit the best-fitting subset; stop when every VM is
// placed. Greedy in server order, near-optimal per server via Algorithm 1.
#pragma once

#include <span>

#include "consolidate/minimum_slack.hpp"
#include "consolidate/slack_index.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate {

struct PacResult {
  std::vector<VmId> placed;
  std::vector<VmId> unplaced;  ///< no server could take them
  std::size_t servers_used = 0;  ///< servers that received at least one VM
  std::size_t min_slack_steps = 0;  ///< total DFS work across servers
};

/// Consolidates `vms` (currently unplaced in `placement`) onto the servers.
/// Mutates `placement`. Servers already hosting VMs participate: their
/// residents count toward the constraints, exactly as in the paper ("given
/// a list of servers (some servers are possibly not empty)").
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options = {});

/// Variant with an explicit server visiting order (IPAC uses it to exclude
/// the server being evacuated from the target list).
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options,
                                    std::span<const ServerId> server_order);

/// Variant driven by a SlackIndex built over the visiting order: servers
/// whose raw CPU slack cannot take even the smallest remaining candidate
/// are skipped in O(log n) instead of each paying an (empty) Minimum Slack
/// call. The index must be registered as the placement's slack observer so
/// placements keep it current; masked servers (IPAC's donor) are never
/// visited. Plan-identical to the linear walk — see SlackIndex's header
/// for the argument.
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options, const SlackIndex& index);

}  // namespace vdc::consolidate
