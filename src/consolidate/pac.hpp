// Power Aware Consolidation (PAC, Section V): walk the servers from most to
// least power-efficient; on each, run Minimum Slack over the remaining
// unallocated VMs and commit the best-fitting subset; stop when every VM is
// placed. Greedy in server order, near-optimal per server via Algorithm 1.
#pragma once

#include <span>

#include "consolidate/minimum_slack.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate {

struct PacResult {
  std::vector<VmId> placed;
  std::vector<VmId> unplaced;  ///< no server could take them
  std::size_t servers_used = 0;  ///< servers that received at least one VM
  std::size_t min_slack_steps = 0;  ///< total DFS work across servers
};

/// Consolidates `vms` (currently unplaced in `placement`) onto the servers.
/// Mutates `placement`. Servers already hosting VMs participate: their
/// residents count toward the constraints, exactly as in the paper ("given
/// a list of servers (some servers are possibly not empty)").
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options = {});

/// Variant with an explicit server visiting order (IPAC uses it to exclude
/// the server being evacuated from the target list).
PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options,
                                    std::span<const ServerId> server_order);

}  // namespace vdc::consolidate
