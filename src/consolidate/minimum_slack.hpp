// Algorithm 1 of the paper: Minimum Slack for a single server.
//
// Given a server (not necessarily empty) and a list of unallocated VMs,
// select a subset whose placement on the server leaves the least
// unallocated CPU resource — subject to arbitrary placement constraints
// (the paper's generalization of Fleszar & Hindi's Minimum Bin Slack
// heuristic). The depth-first search exits early once the slack drops
// below the tolerance epsilon; when a step budget is exhausted, epsilon is
// increased ("by one step" in the paper; a multiplicative escalation here)
// so the search always terminates in bounded time.
#pragma once

#include <span>

#include "consolidate/constraints.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate {

struct MinSlackOptions {
  /// Slack below which the fit is accepted immediately (GHz).
  double epsilon_ghz = 0.05;
  /// Candidate-placement attempts explored before epsilon is escalated.
  std::size_t step_budget = 20000;
  /// Multiplier applied to epsilon on each escalation.
  double epsilon_escalation = 2.0;
  /// Escalations before the search returns the best found so far.
  std::size_t max_escalations = 8;
};

struct MinSlackResult {
  std::vector<VmId> selected;  ///< best-fitting VM subset, in selection order
  double slack_ghz = 0.0;      ///< remaining CPU slack with that subset
  std::size_t steps = 0;       ///< DFS nodes explored
  std::size_t escalations = 0;
};

/// Does not mutate `placement`; the caller places `selected` afterwards.
/// `candidates` must currently be unplaced VMs.
[[nodiscard]] MinSlackResult minimum_slack(const WorkingPlacement& placement, ServerId server,
                                           std::span<const VmId> candidates,
                                           const ConstraintSet& constraints,
                                           const MinSlackOptions& options = {});

struct BudgetedMinSlackResult {
  MinSlackResult result;
  /// Migration energy (J) the selected subset costs.
  double cost_j = 0.0;
};

/// Budgeted, rack-aware Algorithm 1: candidate i additionally carries the
/// migration energy `candidate_cost_j[i]` (J) of moving it onto `server`
/// (distance-dependent — see MigrationCostModel), and only subsets whose
/// total cost stays within `budget_j` are explored. Cost-infeasible
/// candidates are pruned exactly like capacity-infeasible ones, so with an
/// infinite budget (or all-zero costs) the selection is identical to
/// minimum_slack's. Reference mirror: naive::minimum_slack_budgeted.
[[nodiscard]] BudgetedMinSlackResult minimum_slack_budgeted(
    const WorkingPlacement& placement, ServerId server, std::span<const VmId> candidates,
    std::span<const double> candidate_cost_j, double budget_j, const ConstraintSet& constraints,
    const MinSlackOptions& options = {});

}  // namespace vdc::consolidate
