// Cost-aware VM migration (Section V, last paragraph). Migration cost
// "can be highly different for different data centers", so the paper
// "provide[s] an interface for data center administrators to define their
// own cost functions based on their various policies". This is that
// interface, with the obvious built-in policies.
//
// UNITS. Every energy quantity crossing this boundary is joules (J), and
// 1 J = 1 W·s exactly: `estimated_benefit_j` is the stationary power
// saving in watts times the optimizer's benefit horizon in seconds, and
// `cost_j` is migration power times transfer duration. `estimated_benefit_w`
// stays in watts for policies (like MinBenefitPolicy) that reason about
// steady-state power rather than energy. Mixing the two is the bug this
// comment exists to prevent.
#pragma once

#include <memory>
#include <string>

#include "consolidate/snapshot.hpp"
#include "datacenter/migration.hpp"

namespace vdc::consolidate {

struct MigrationProposal {
  VmId vm = 0;
  ServerId from = 0;
  ServerId to = 0;
  /// Estimated power saving attributable to this migration (W). For an
  /// evacuation round that lets a server sleep, the donor's idle power is
  /// split across the round's moves.
  double estimated_benefit_w = 0.0;
  /// Bytes the migration moves over the network.
  double bytes = 0.0;
  /// Bytes of migrations already approved in this optimizer invocation.
  double bytes_already_approved = 0.0;
  /// Network tier the move crosses (kSameRack when the fleet is flat).
  NetworkDistance distance = NetworkDistance::kSameRack;
  /// Migration energy this move burns (J = W·s). 0 when the engine runs
  /// without a cost model.
  double cost_j = 0.0;
  /// Migration energy of moves already approved in this invocation (J).
  double cost_already_approved_j = 0.0;
  /// The benefit converted to energy over the optimizer's horizon
  /// (J = estimated_benefit_w × benefit_horizon_s). 0 when the engine runs
  /// without a cost model.
  double estimated_benefit_j = 0.0;
};

class MigrationCostPolicy {
 public:
  virtual ~MigrationCostPolicy() = default;
  [[nodiscard]] virtual bool allow(const DataCenterSnapshot& snapshot,
                                   const MigrationProposal& proposal) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Migrations are free: benefits always outweigh costs (the paper's
/// simulation default).
class FreeMigrationPolicy final : public MigrationCostPolicy {
 public:
  [[nodiscard]] bool allow(const DataCenterSnapshot&, const MigrationProposal&) const override {
    return true;
  }
  [[nodiscard]] std::string name() const override { return "free-migration"; }
};

/// Old name for FreeMigrationPolicy — "allow all" described the behavior,
/// not the economics it assumes.
using AllowAllPolicy [[deprecated("use FreeMigrationPolicy")]] = FreeMigrationPolicy;

/// Caps the total bytes migrated per optimizer invocation — the paper's
/// "network bandwidth is a bottleneck" example.
class BandwidthBudgetPolicy final : public MigrationCostPolicy {
 public:
  explicit BandwidthBudgetPolicy(double max_bytes_per_invocation);
  [[nodiscard]] bool allow(const DataCenterSnapshot& snapshot,
                           const MigrationProposal& proposal) const override;
  [[nodiscard]] std::string name() const override { return "bandwidth-budget"; }

 private:
  double max_bytes_;
};

/// Requires a minimum expected power saving per migration; large-memory
/// VMs (expensive to move) can demand a higher payoff via `w_per_gb`.
class MinBenefitPolicy final : public MigrationCostPolicy {
 public:
  explicit MinBenefitPolicy(double min_benefit_w, double w_per_gb = 0.0);
  [[nodiscard]] bool allow(const DataCenterSnapshot& snapshot,
                           const MigrationProposal& proposal) const override;
  [[nodiscard]] std::string name() const override { return "min-benefit"; }

 private:
  double min_benefit_w_;
  double w_per_gb_;
};

/// Caps the total migration ENERGY (J) spent per optimizer invocation, and
/// rejects same-host proposals outright — a zero-distance move transfers
/// nothing, saves nothing, and only pollutes the plan. Requires the engine
/// to fill the energy fields (i.e. a rack-aware run); throws on proposals
/// with invalid cost.
class MigrationEnergyBudgetPolicy final : public MigrationCostPolicy {
 public:
  explicit MigrationEnergyBudgetPolicy(double budget_j);
  [[nodiscard]] bool allow(const DataCenterSnapshot& snapshot,
                           const MigrationProposal& proposal) const override;
  [[nodiscard]] std::string name() const override { return "migration-energy-budget"; }

 private:
  double budget_j_;
};

}  // namespace vdc::consolidate
