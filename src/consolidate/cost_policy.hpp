// Cost-aware VM migration (Section V, last paragraph). Migration cost
// "can be highly different for different data centers", so the paper
// "provide[s] an interface for data center administrators to define their
// own cost functions based on their various policies". This is that
// interface, with the obvious built-in policies.
#pragma once

#include <memory>
#include <string>

#include "consolidate/snapshot.hpp"
#include "datacenter/migration.hpp"

namespace vdc::consolidate {

struct MigrationProposal {
  VmId vm = 0;
  ServerId from = 0;
  ServerId to = 0;
  /// Estimated power saving attributable to this migration (W). For an
  /// evacuation round that lets a server sleep, the donor's idle power is
  /// split across the round's moves.
  double estimated_benefit_w = 0.0;
  /// Bytes the migration moves over the network.
  double bytes = 0.0;
  /// Bytes of migrations already approved in this optimizer invocation.
  double bytes_already_approved = 0.0;
};

class MigrationCostPolicy {
 public:
  virtual ~MigrationCostPolicy() = default;
  [[nodiscard]] virtual bool allow(const DataCenterSnapshot& snapshot,
                                   const MigrationProposal& proposal) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Benefits always outweigh costs (the paper's simulation default).
class AllowAllPolicy final : public MigrationCostPolicy {
 public:
  [[nodiscard]] bool allow(const DataCenterSnapshot&, const MigrationProposal&) const override {
    return true;
  }
  [[nodiscard]] std::string name() const override { return "allow-all"; }
};

/// Caps the total bytes migrated per optimizer invocation — the paper's
/// "network bandwidth is a bottleneck" example.
class BandwidthBudgetPolicy final : public MigrationCostPolicy {
 public:
  explicit BandwidthBudgetPolicy(double max_bytes_per_invocation);
  [[nodiscard]] bool allow(const DataCenterSnapshot& snapshot,
                           const MigrationProposal& proposal) const override;
  [[nodiscard]] std::string name() const override { return "bandwidth-budget"; }

 private:
  double max_bytes_;
};

/// Requires a minimum expected power saving per migration; large-memory
/// VMs (expensive to move) can demand a higher payoff via `w_per_gb`.
class MinBenefitPolicy final : public MigrationCostPolicy {
 public:
  explicit MinBenefitPolicy(double min_benefit_w, double w_per_gb = 0.0);
  [[nodiscard]] bool allow(const DataCenterSnapshot& snapshot,
                           const MigrationProposal& proposal) const override;
  [[nodiscard]] std::string name() const override { return "min-benefit"; }

 private:
  double min_benefit_w_;
  double w_per_gb_;
};

}  // namespace vdc::consolidate
