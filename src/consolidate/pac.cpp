#include "consolidate/pac.hpp"

#include <algorithm>

#include "consolidate/ffd.hpp"

namespace vdc::consolidate {

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options) {
  const std::vector<ServerId> order = servers_by_power_efficiency(placement.snapshot());
  return power_aware_consolidation(placement, vms, constraints, options, order);
}

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options,
                                    std::span<const ServerId> server_order) {
  PacResult result;
  std::vector<VmId> remaining(vms.begin(), vms.end());
  if (remaining.empty()) return result;

  for (const ServerId server : server_order) {
    if (remaining.empty()) break;
    MinSlackResult fit = minimum_slack(placement, server, remaining, constraints, options);
    result.min_slack_steps += fit.steps;
    if (fit.selected.empty()) continue;
    for (const VmId vm : fit.selected) {
      placement.place(vm, server);
      result.placed.push_back(vm);
      remaining.erase(std::remove(remaining.begin(), remaining.end(), vm), remaining.end());
    }
    ++result.servers_used;
  }
  result.unplaced = std::move(remaining);
  return result;
}

}  // namespace vdc::consolidate
