#include "consolidate/pac.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "consolidate/ffd.hpp"

namespace vdc::consolidate {

namespace {

PacResult consolidate(WorkingPlacement& placement, std::span<const VmId> vms,
                      const ConstraintSet& constraints, const MinSlackOptions& options,
                      std::span<const ServerId> server_order, const SlackIndex* index) {
  PacResult result;
  std::vector<VmId> remaining(vms.begin(), vms.end());
  if (remaining.empty()) return result;
  const DataCenterSnapshot& snapshot = placement.snapshot();

  // Servers whose raw CPU slack is below the smallest remaining demand are
  // skipped: Minimum Slack's capacity bound would prune every candidate at
  // the top level there, so the reference engine returns an empty selection
  // for them anyway. The index answers "next viable server" in O(log n);
  // the linear walk pays an O(1) test per server. The same argument covers
  // memory when the constraint set is builtin: a server whose free memory
  // cannot hold even the smallest remaining candidate rejects every
  // candidate at every depth (the memory check is monotone in the
  // selection), so its visit provably selects nothing — and since the step
  // budget is per Minimum-Slack call, skipping the visit outright leaves
  // every other call, and therefore the plan, untouched. The reference
  // engine still touches each candidate once at the top level of such a
  // visit (one counted step apiece, selecting nothing), so the skip adds
  // that count analytically; when the candidate list is long enough that
  // the per-call budget could bind mid-scan, the real call is made so the
  // step accounting stays exact.
  const bool memory_gate = constraints.builtin_profile().all_builtin &&
                           constraints.builtin_profile().has_memory;
  double smallest = 0.0;
  double smallest_memory = 0.0;
  auto refresh_smallest = [&] {
    smallest = std::numeric_limits<double>::infinity();
    smallest_memory = std::numeric_limits<double>::infinity();
    for (const VmId vm : remaining) {
      const VmSnapshot& info = snapshot.vm(vm);
      smallest = std::min(smallest, info.cpu_demand_ghz);
      smallest_memory = std::min(smallest_memory, info.memory_mb);
    }
  };
  refresh_smallest();

  std::vector<VmId> sorted_selected;
  const std::size_t limit = index != nullptr ? index->size() : server_order.size();
  for (std::size_t pos = 0; pos < limit; ++pos) {
    if (remaining.empty()) break;
    ServerId server = 0;
    if (index != nullptr) {
      pos = index->find_first(pos, smallest - 1e-9);
      if (pos == SlackIndex::npos) break;
      server = index->server_at(pos);
    } else {
      server = server_order[pos];
      if (placement.cpu_slack(server) + 1e-9 < smallest) continue;
    }
    if (memory_gate && placement.memory_used_mb(server) + smallest_memory >
                           snapshot.server(server).memory_mb + 1e-9 &&
        !snapshot.server(server).failed) {
      // Below epsilon the reference exits before its first step; otherwise
      // it pays one step per candidate.
      if (placement.cpu_slack(server) < options.epsilon_ghz) continue;
      if (remaining.size() < options.step_budget) {
        result.min_slack_steps += remaining.size();
        continue;
      }
    }
    MinSlackResult fit = minimum_slack(placement, server, remaining, constraints, options);
    result.min_slack_steps += fit.steps;
    if (fit.selected.empty()) continue;
    for (const VmId vm : fit.selected) {
      placement.place(vm, server);
      result.placed.push_back(vm);
    }
    // One filtering pass instead of an erase-remove per placed VM.
    sorted_selected.assign(fit.selected.begin(), fit.selected.end());
    std::sort(sorted_selected.begin(), sorted_selected.end());
    std::erase_if(remaining, [&](VmId vm) {
      return std::binary_search(sorted_selected.begin(), sorted_selected.end(), vm);
    });
    refresh_smallest();
    ++result.servers_used;
  }
  result.unplaced = std::move(remaining);
  return result;
}

}  // namespace

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options) {
  const std::vector<ServerId> order = servers_by_power_efficiency(placement.snapshot());
  return power_aware_consolidation(placement, vms, constraints, options, order);
}

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options,
                                    std::span<const ServerId> server_order) {
  return consolidate(placement, vms, constraints, options, server_order, nullptr);
}

PacResult power_aware_consolidation(WorkingPlacement& placement, std::span<const VmId> vms,
                                    const ConstraintSet& constraints,
                                    const MinSlackOptions& options, const SlackIndex& index) {
  return consolidate(placement, vms, constraints, options, {}, &index);
}

PacResult power_aware_consolidation_budgeted(WorkingPlacement& placement,
                                             std::span<const VmId> vms,
                                             const ConstraintSet& constraints,
                                             const MinSlackOptions& options,
                                             std::span<const ServerId> server_order,
                                             const MigrationCostContext& cost) {
  if (cost.model == nullptr) {
    throw std::invalid_argument("power_aware_consolidation_budgeted: cost model required");
  }
  PacResult result;
  std::vector<VmId> remaining(vms.begin(), vms.end());
  if (remaining.empty()) return result;
  const DataCenterSnapshot& snapshot = placement.snapshot();

  const auto cost_to = [&](VmId vm, ServerId server) {
    const ServerId from =
        vm < cost.origin.size() ? cost.origin[vm] : datacenter::kNoServer;
    if (from == datacenter::kNoServer) return 0.0;
    return cost.model->energy_j(snapshot.vm(vm).memory_mb, snapshot.distance(from, server));
  };

  double smallest = 0.0;
  const auto refresh_smallest = [&] {
    smallest = std::numeric_limits<double>::infinity();
    for (const VmId vm : remaining) {
      smallest = std::min(smallest, snapshot.vm(vm).cpu_demand_ghz);
    }
  };
  refresh_smallest();

  double spent_j = 0.0;
  std::vector<double> costs;
  std::vector<VmId> sorted_selected;
  for (const ServerId server : server_order) {
    if (remaining.empty()) break;
    if (placement.cpu_slack(server) + 1e-9 < smallest) continue;
    costs.clear();
    for (const VmId vm : remaining) costs.push_back(cost_to(vm, server));
    const BudgetedMinSlackResult fit = minimum_slack_budgeted(
        placement, server, remaining, costs, cost.budget_j - spent_j, constraints, options);
    result.min_slack_steps += fit.result.steps;
    if (fit.result.selected.empty()) continue;
    spent_j += fit.cost_j;
    for (const VmId vm : fit.result.selected) {
      placement.place(vm, server);
      result.placed.push_back(vm);
    }
    sorted_selected.assign(fit.result.selected.begin(), fit.result.selected.end());
    std::sort(sorted_selected.begin(), sorted_selected.end());
    std::erase_if(remaining, [&](VmId vm) {
      return std::binary_search(sorted_selected.begin(), sorted_selected.end(), vm);
    });
    refresh_smallest();
    ++result.servers_used;
  }
  result.migration_energy_j = spent_j;
  result.unplaced = std::move(remaining);
  return result;
}

}  // namespace vdc::consolidate
