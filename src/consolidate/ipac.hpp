// Incremental Power Aware Consolidation (IPAC, Section V).
//
// Each invocation:
//   1. Overload relief: pull the smallest VMs off servers that can no
//      longer host their load (workload grew since the last invocation)
//      into the migration list, and PAC-place them.
//   2. Consolidation rounds: evacuate the least power-efficient occupied
//      server into the migration list, PAC-place the list on the other
//      servers, and keep going with the next least-efficient server while
//      the number of occupied servers decreases. A round that fails to
//      place every VM — or whose migrations the cost policy rejects — is
//      rolled back and ends the loop.
//
// Only the migration list is repacked each time (hence *incremental*),
// which is what keeps IPAC cheap enough to run with Minimum Slack inside.
#pragma once

#include <cstddef>

#include "consolidate/cost_policy.hpp"
#include "consolidate/minimum_slack.hpp"
#include "consolidate/snapshot.hpp"
#include "consolidate/topology_cost.hpp"

namespace vdc::consolidate {

struct IpacOptions {
  MinSlackOptions min_slack;
  /// Upper bound on consolidation rounds per invocation (each round can
  /// empty one server); the default lets the loop run to quiescence.
  std::size_t max_rounds = static_cast<std::size_t>(-1);
};

struct IpacReport {
  PlacementPlan plan;
  std::size_t occupied_before = 0;
  std::size_t occupied_after = 0;
  std::size_t overload_moves = 0;
  std::size_t consolidation_moves = 0;
  std::size_t rounds_attempted = 0;
  std::size_t rounds_accepted = 0;
  std::size_t rounds_rejected_by_policy = 0;
  std::size_t min_slack_steps = 0;
  // Rack-aware accounting (all 0 when RackAwareOptions is disabled):
  /// Rounds whose migration energy exceeded their net-energy benefit.
  std::size_t rounds_rejected_by_cost = 0;
  /// Rounds that would have spent past the plan's energy budget.
  std::size_t rounds_rejected_by_budget = 0;
  /// Total migration energy (J) the plan's moves cost (relief included).
  double migration_energy_j = 0.0;
  /// Racks occupied before the pass and fully evacuated by it (their
  /// shared-infrastructure draw switches off when the plan is applied).
  std::size_t racks_emptied = 0;
};

/// Pure function: computes the plan; apply it with apply_plan().
/// Overload-relief migrations bypass the cost policy (they protect SLAs);
/// consolidation migrations are submitted to it move by move.
///
/// With `rack.enabled` on a topology-carrying snapshot, the pass becomes
/// budgeted and rack-aware: donors are evacuated nearly-empty racks first
/// (completing a rack evacuation switches off its shared draw), every
/// consolidation round is scored on NET energy — stationary savings over
/// `rack.benefit_horizon_s` minus the round's distance-dependent migration
/// energy — and rounds that lose energy or overrun the plan budget are
/// rolled back (the search then continues with the next donor, since a
/// cross-pod-expensive donor says nothing about a same-rack-cheap one).
/// With the default (disabled) options, or on a flat snapshot, plans are
/// move-for-move identical to the pre-topology engine.
[[nodiscard]] IpacReport ipac(const DataCenterSnapshot& snapshot,
                              const ConstraintSet& constraints,
                              const MigrationCostPolicy& policy = FreeMigrationPolicy(),
                              const IpacOptions& options = {},
                              const RackAwareOptions& rack = {});

}  // namespace vdc::consolidate
