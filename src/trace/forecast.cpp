#include "trace/forecast.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdc::trace {

RecentPeakForecaster::RecentPeakForecaster(std::size_t vms, std::size_t window,
                                           double safety_factor)
    : window_(window), safety_(safety_factor), history_(vms) {
  if (window == 0) throw std::invalid_argument("RecentPeakForecaster: window must be > 0");
  if (!(safety_factor >= 1.0)) {
    throw std::invalid_argument("RecentPeakForecaster: safety factor must be >= 1");
  }
}

void RecentPeakForecaster::observe(std::size_t vm, double demand_ghz) {
  auto& h = history_.at(vm);
  h.push_back(demand_ghz);
  if (h.size() > window_) h.pop_front();
}

double RecentPeakForecaster::predict_peak(std::size_t vm, std::size_t) const {
  const auto& h = history_.at(vm);
  if (h.empty()) return 0.0;
  return safety_ * *std::max_element(h.begin(), h.end());
}

DiurnalPeakForecaster::DiurnalPeakForecaster(std::size_t vms, std::size_t period,
                                             double safety_factor)
    : period_(period), safety_(safety_factor), history_(vms) {
  if (period == 0) throw std::invalid_argument("DiurnalPeakForecaster: period must be > 0");
  if (!(safety_factor >= 1.0)) {
    throw std::invalid_argument("DiurnalPeakForecaster: safety factor must be >= 1");
  }
}

void DiurnalPeakForecaster::observe(std::size_t vm, double demand_ghz) {
  auto& h = history_.at(vm);
  h.push_back(demand_ghz);
  if (h.size() > 2 * period_) h.pop_front();
}

double DiurnalPeakForecaster::predict_peak(std::size_t vm, std::size_t horizon) const {
  const auto& h = history_.at(vm);
  if (h.empty()) return 0.0;
  horizon = std::min(horizon, period_);

  // Recent component: the last few observations (captures trends/bursts).
  const std::size_t recent_window = std::min<std::size_t>(h.size(), 4);
  double peak = 0.0;
  for (std::size_t i = h.size() - recent_window; i < h.size(); ++i) {
    peak = std::max(peak, h[i]);
  }

  // Seasonal component: the same time window one period ago. The latest
  // sample is "now"; the next `horizon` samples correspond to offsets
  // [period - horizon, period) from the back.
  if (h.size() >= period_) {
    for (std::size_t step = 1; step <= horizon; ++step) {
      const std::size_t back = period_ - step;  // index from the back
      if (back < h.size()) {
        peak = std::max(peak, h[h.size() - 1 - back]);
      }
    }
  }
  return safety_ * peak;
}

}  // namespace vdc::trace
