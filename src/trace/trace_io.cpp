#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace vdc::trace {

void write_trace_csv(std::ostream& out, const UtilizationTrace& trace) {
  out << "server,label";
  for (std::size_t k = 0; k < trace.sample_count(); ++k) out << ",u" << k;
  out << '\n';
  for (std::size_t s = 0; s < trace.server_count(); ++s) {
    out << s << ',';
    if (s < trace.labels.size()) out << trace.labels[s];
    for (const double u : trace.series(s)) out << ',' << u;
    out << '\n';
  }
}

void write_trace_csv_file(const std::filesystem::path& path, const UtilizationTrace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_trace_csv_file: cannot open " + path.string());
  write_trace_csv(out, trace);
}

UtilizationTrace read_trace_csv(std::istream& in, double sample_period_s) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("read_trace_csv: empty input");
  // Count sample columns from the header.
  std::size_t commas = 0;
  for (const char c : line) commas += (c == ',');
  const bool has_label = line.find(",label") != std::string::npos;
  const std::size_t samples = commas - (has_label ? 1 : 0);
  if (samples == 0) throw std::runtime_error("read_trace_csv: no sample columns");

  std::vector<std::vector<double>> rows;
  std::vector<std::string> labels;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> values;
    values.reserve(samples);
    std::string label;
    std::size_t field = 0;
    std::size_t start = 0;
    while (start <= line.size()) {
      std::size_t end = line.find(',', start);
      if (end == std::string::npos) end = line.size();
      const std::string_view cell(line.data() + start, end - start);
      if (field == 1 && has_label) {
        label = std::string(cell);
      } else if (field >= (has_label ? 2u : 1u)) {
        double v = 0.0;
        const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), v);
        if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
          throw std::runtime_error("read_trace_csv: bad cell '" + std::string(cell) + "'");
        }
        values.push_back(v);
      }
      start = end + 1;
      ++field;
    }
    if (values.size() != samples) {
      throw std::runtime_error("read_trace_csv: row width mismatch");
    }
    rows.push_back(std::move(values));
    labels.push_back(std::move(label));
  }
  if (rows.empty()) throw std::runtime_error("read_trace_csv: no data rows");

  UtilizationTrace trace(rows.size(), samples, sample_period_s);
  trace.labels = std::move(labels);
  for (std::size_t s = 0; s < rows.size(); ++s) {
    for (std::size_t k = 0; k < samples; ++k) trace.set(s, k, rows[s][k]);
  }
  return trace;
}

UtilizationTrace read_trace_csv_file(const std::filesystem::path& path,
                                     double sample_period_s) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_trace_csv_file: cannot open " + path.string());
  return read_trace_csv(in, sample_period_s);
}

}  // namespace vdc::trace
