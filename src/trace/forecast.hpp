// Demand forecasting for proactive consolidation.
//
// The optimizer packs VMs by their demand at invocation time; with hours
// between invocations, demand growth (the diurnal ramp) overloads servers
// packed at the nightly trough. Forecasting the peak demand over the next
// invocation period and packing against *that* is the classic fix (cf.
// pMapper's successor work on workload analysis). Two predictors:
//
//   * RecentPeakForecaster — max over the last W observations, times a
//     safety factor; robust, trend-following.
//   * DiurnalPeakForecaster — max over the same time-of-day window one
//     period (day) earlier, blended with the recent peak; exploits the
//     strong daily seasonality of enterprise utilization traces.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace vdc::trace {

class DemandForecaster {
 public:
  virtual ~DemandForecaster() = default;
  /// Feed one observation per VM per sample (call for every VM each step).
  virtual void observe(std::size_t vm, double demand_ghz) = 0;
  /// Predicted peak demand for the VM over the next `horizon` samples.
  [[nodiscard]] virtual double predict_peak(std::size_t vm, std::size_t horizon) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Predicts the recent maximum (sliding window) times a safety factor.
class RecentPeakForecaster final : public DemandForecaster {
 public:
  RecentPeakForecaster(std::size_t vms, std::size_t window, double safety_factor = 1.1);

  void observe(std::size_t vm, double demand_ghz) override;
  [[nodiscard]] double predict_peak(std::size_t vm, std::size_t horizon) const override;
  [[nodiscard]] std::string name() const override { return "recent-peak"; }

 private:
  std::size_t window_;
  double safety_;
  std::vector<std::deque<double>> history_;
};

/// Predicts max(recent peak, same-time-tomorrow peak from one seasonal
/// period ago). Falls back to the recent peak until a full period of
/// history exists.
class DiurnalPeakForecaster final : public DemandForecaster {
 public:
  /// `period` is the seasonal length in samples (96 for daily at 15 min).
  DiurnalPeakForecaster(std::size_t vms, std::size_t period, double safety_factor = 1.05);

  void observe(std::size_t vm, double demand_ghz) override;
  [[nodiscard]] double predict_peak(std::size_t vm, std::size_t horizon) const override;
  [[nodiscard]] std::string name() const override { return "diurnal-peak"; }

 private:
  std::size_t period_;
  double safety_;
  /// Last 2*period observations per VM (enough to look one period back
  /// across any horizon <= period).
  std::vector<std::deque<double>> history_;
};

}  // namespace vdc::trace
