#include "trace/trace.hpp"

#include <stdexcept>

namespace vdc::trace {

UtilizationTrace::UtilizationTrace(std::size_t servers, std::size_t samples,
                                   double sample_period_s)
    : servers_(servers), samples_(samples), dt_(sample_period_s),
      data_(servers * samples, 0.0) {
  if (servers == 0 || samples == 0) {
    throw std::invalid_argument("UtilizationTrace: empty dimensions");
  }
  if (!(sample_period_s > 0.0)) {
    throw std::invalid_argument("UtilizationTrace: sample period must be positive");
  }
}

double UtilizationTrace::at(std::size_t server, std::size_t k) const {
  if (server >= servers_ || k >= samples_) throw std::out_of_range("UtilizationTrace::at");
  return data_[server * samples_ + k];
}

void UtilizationTrace::set(std::size_t server, std::size_t k, double utilization) {
  if (server >= servers_ || k >= samples_) throw std::out_of_range("UtilizationTrace::set");
  if (utilization < 0.0 || utilization > 1.0) {
    throw std::invalid_argument("UtilizationTrace::set: utilization outside [0,1]");
  }
  data_[server * samples_ + k] = utilization;
}

std::span<const double> UtilizationTrace::series(std::size_t server) const {
  if (server >= servers_) throw std::out_of_range("UtilizationTrace::series");
  return {data_.data() + server * samples_, samples_};
}

util::RunningStats UtilizationTrace::server_stats(std::size_t server) const {
  util::RunningStats stats;
  for (const double u : series(server)) stats.add(u);
  return stats;
}

double UtilizationTrace::mean_at(std::size_t k) const {
  if (k >= samples_) throw std::out_of_range("UtilizationTrace::mean_at");
  double sum = 0.0;
  for (std::size_t s = 0; s < servers_; ++s) sum += data_[s * samples_ + k];
  return sum / static_cast<double>(servers_);
}

double UtilizationTrace::global_mean() const {
  double sum = 0.0;
  for (const double u : data_) sum += u;
  return sum / static_cast<double>(data_.size());
}

}  // namespace vdc::trace
