// Server-utilization trace: one CPU-utilization series per server, sampled
// on a fixed period. Mirrors the trace the paper's simulator consumes —
// "the average CPU utilization of each server every 15 minutes from 00:00
// on July 14th (Monday) to 23:45 on July 20th (Sunday) in 2008" for 5,415
// servers — and, like the paper, each server's series becomes the CPU
// demand of one VM.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/statistics.hpp"

namespace vdc::trace {

inline constexpr std::size_t kPaperServerCount = 5415;
inline constexpr std::size_t kPaperSampleCount = 672;  // 7 days x 96 per day
inline constexpr double kPaperSamplePeriodS = 900.0;   // 15 minutes

class UtilizationTrace {
 public:
  UtilizationTrace(std::size_t servers, std::size_t samples,
                   double sample_period_s = kPaperSamplePeriodS);

  [[nodiscard]] std::size_t server_count() const noexcept { return servers_; }
  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] double sample_period_s() const noexcept { return dt_; }
  [[nodiscard]] double duration_s() const noexcept {
    return dt_ * static_cast<double>(samples_);
  }

  /// Utilization in [0,1] of `server` at sample `k`.
  [[nodiscard]] double at(std::size_t server, std::size_t k) const;
  void set(std::size_t server, std::size_t k, double utilization);

  /// Contiguous series of one server.
  [[nodiscard]] std::span<const double> series(std::size_t server) const;

  [[nodiscard]] util::RunningStats server_stats(std::size_t server) const;
  /// Mean utilization across all servers at sample k.
  [[nodiscard]] double mean_at(std::size_t k) const;
  /// Mean over everything.
  [[nodiscard]] double global_mean() const;

  /// Optional per-server labels (sector names in the synthetic trace).
  std::vector<std::string> labels;

 private:
  std::size_t servers_;
  std::size_t samples_;
  double dt_;
  std::vector<double> data_;  // row-major: server-major, sample-minor
};

}  // namespace vdc::trace
