#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace vdc::trace {

std::vector<SectorProfile> default_sector_profiles() {
  std::vector<SectorProfile> sectors;
  sectors.push_back(SectorProfile{
      .name = "manufacturing",
      .base_mean = 0.20,
      .base_spread = 0.06,
      .diurnal_amplitude = 0.25,
      .peak_hour = 10.0,
      .peak_width_h = 5.0,
      .second_peak_hour = -1.0,
      .weekend_factor = 0.6,  // plants often run weekend shifts
      .noise_sigma = 0.03,
      .noise_phi = 0.7,
      .burst_probability = 0.001,
      .burst_amplitude = 0.25,
      .burst_decay = 0.6,
  });
  sectors.push_back(SectorProfile{
      .name = "telecom",
      .base_mean = 0.25,
      .base_spread = 0.08,
      .diurnal_amplitude = 0.20,
      .peak_hour = 20.0,  // evening traffic peak
      .peak_width_h = 5.0,
      .second_peak_hour = -1.0,
      .weekend_factor = 0.9,  // 24/7 service, weekends barely differ
      .noise_sigma = 0.025,
      .noise_phi = 0.8,
      .burst_probability = 0.002,
      .burst_amplitude = 0.30,
      .burst_decay = 0.5,
  });
  sectors.push_back(SectorProfile{
      .name = "financial",
      .base_mean = 0.12,
      .base_spread = 0.05,
      .diurnal_amplitude = 0.45,
      .peak_hour = 11.0,  // trading hours
      .peak_width_h = 3.0,
      .second_peak_hour = 15.0,  // afternoon session
      .weekend_factor = 0.15,    // markets closed
      .noise_sigma = 0.04,
      .noise_phi = 0.6,
      .burst_probability = 0.003,
      .burst_amplitude = 0.40,
      .burst_decay = 0.6,
  });
  sectors.push_back(SectorProfile{
      .name = "retail",
      .base_mean = 0.15,
      .base_spread = 0.05,
      .diurnal_amplitude = 0.35,
      .peak_hour = 13.0,  // lunchtime shopping
      .peak_width_h = 3.5,
      .second_peak_hour = 19.0,  // after-work shopping
      .weekend_factor = 1.2,     // weekends are the busy days
      .noise_sigma = 0.035,
      .noise_phi = 0.65,
      .burst_probability = 0.002,
      .burst_amplitude = 0.35,
      .burst_decay = 0.6,
  });
  return sectors;
}

namespace {

double gaussian_bump(double hour, double center, double width) {
  // Wrap-around distance on the 24 h circle.
  double d = std::abs(hour - center);
  d = std::min(d, 24.0 - d);
  return std::exp(-0.5 * (d / width) * (d / width));
}

}  // namespace

UtilizationTrace generate_synthetic_trace(const SyntheticTraceOptions& options) {
  std::vector<SectorProfile> sectors =
      options.sectors.empty() ? default_sector_profiles() : options.sectors;
  std::vector<double> weights = options.sector_weights;
  if (weights.empty()) weights.assign(sectors.size(), 1.0);
  if (weights.size() != sectors.size()) {
    throw std::invalid_argument("generate_synthetic_trace: weight/sector count mismatch");
  }
  const double weight_sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(weight_sum > 0.0)) {
    throw std::invalid_argument("generate_synthetic_trace: weights must be positive");
  }

  UtilizationTrace trace(options.servers, options.samples, options.sample_period_s);
  trace.labels.resize(options.servers);
  util::Rng rng(options.seed);

  for (std::size_t server = 0; server < options.servers; ++server) {
    // Sector assignment by weight.
    double pick = rng.uniform(0.0, weight_sum);
    std::size_t sector_index = 0;
    for (; sector_index + 1 < sectors.size(); ++sector_index) {
      if (pick < weights[sector_index]) break;
      pick -= weights[sector_index];
    }
    const SectorProfile& sector = sectors[sector_index];
    trace.labels[server] = sector.name;

    const double base =
        std::max(0.02, rng.normal(sector.base_mean, sector.base_spread));
    const double amplitude =
        std::max(0.0, rng.normal(sector.diurnal_amplitude, sector.diurnal_amplitude * 0.2));
    const double phase_jitter_h = rng.normal(0.0, 0.7);

    double ar_noise = 0.0;
    double burst = 0.0;
    for (std::size_t k = 0; k < options.samples; ++k) {
      const double t_s = static_cast<double>(k) * options.sample_period_s;
      const double hour = std::fmod(t_s / 3600.0, 24.0);
      const auto day = static_cast<int>(t_s / 86400.0);  // 0 = Monday
      const bool weekend = (day % 7) >= 5;

      double diurnal = gaussian_bump(hour, sector.peak_hour + phase_jitter_h,
                                     sector.peak_width_h);
      if (sector.second_peak_hour >= 0.0) {
        diurnal = std::max(diurnal, 0.8 * gaussian_bump(hour, sector.second_peak_hour +
                                                                  phase_jitter_h,
                                                        sector.peak_width_h));
      }
      double level = base + amplitude * diurnal * (weekend ? sector.weekend_factor : 1.0);

      ar_noise = sector.noise_phi * ar_noise +
                 rng.normal(0.0, sector.noise_sigma);
      burst *= sector.burst_decay;
      if (rng.bernoulli(sector.burst_probability)) {
        burst += sector.burst_amplitude * rng.uniform(0.5, 1.0);
      }

      trace.set(server, k, std::clamp(level + ar_noise + burst, 0.01, 1.0));
    }
  }
  return trace;
}

}  // namespace vdc::trace
