// Trace characterization: summary statistics used to validate the
// synthetic trace against the features the paper's evaluation relies on
// (low average utilization, strong diurnality, weekday/weekend contrast) —
// and to let users sanity-check their own imported traces.
#pragma once

#include <map>
#include <string>

#include "trace/trace.hpp"

namespace vdc::trace {

struct SeriesProfile {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double peak_to_mean = 0.0;
  /// Lag-1 autocorrelation (smoothness of the series).
  double autocorrelation_lag1 = 0.0;
};

struct TraceProfile {
  SeriesProfile overall;
  /// Business hours (9-17 local) mean over weekday samples.
  double business_hours_mean = 0.0;
  /// Night (0-5 local) mean over weekday samples.
  double night_mean = 0.0;
  /// business_hours_mean / night_mean — the diurnal contrast the
  /// consolidators exploit.
  double diurnal_ratio = 0.0;
  double weekday_mean = 0.0;
  double weekend_mean = 0.0;
  /// Per-label profile when the trace carries labels (synthetic sectors).
  std::map<std::string, SeriesProfile> by_label;
};

/// Profile of a single server's series.
[[nodiscard]] SeriesProfile profile_series(std::span<const double> series);

/// Whole-trace profile. Assumes the trace starts at Monday 00:00 (as the
/// paper's does).
[[nodiscard]] TraceProfile profile_trace(const UtilizationTrace& trace);

/// Renders the profile as a short human-readable report.
[[nodiscard]] std::string to_string(const TraceProfile& profile);

}  // namespace vdc::trace
