#include "trace/analysis.hpp"

#include <cmath>
#include <sstream>

#include "util/statistics.hpp"

namespace vdc::trace {

SeriesProfile profile_series(std::span<const double> series) {
  SeriesProfile profile;
  if (series.empty()) return profile;
  util::RunningStats stats;
  for (const double u : series) stats.add(u);
  profile.mean = stats.mean();
  profile.stddev = stats.stddev();
  profile.min = stats.min();
  profile.max = stats.max();
  profile.peak_to_mean = stats.mean() > 0.0 ? stats.max() / stats.mean() : 0.0;

  if (series.size() > 2 && stats.variance() > 0.0) {
    double cov = 0.0;
    for (std::size_t k = 0; k + 1 < series.size(); ++k) {
      cov += (series[k] - profile.mean) * (series[k + 1] - profile.mean);
    }
    cov /= static_cast<double>(series.size() - 1);
    profile.autocorrelation_lag1 = cov / stats.variance();
  }
  return profile;
}

TraceProfile profile_trace(const UtilizationTrace& trace) {
  TraceProfile profile;

  // Overall profile over the per-sample cluster means.
  std::vector<double> cluster_mean(trace.sample_count());
  for (std::size_t k = 0; k < trace.sample_count(); ++k) cluster_mean[k] = trace.mean_at(k);
  profile.overall = profile_series(cluster_mean);

  util::RunningStats business;
  util::RunningStats night;
  util::RunningStats weekday;
  util::RunningStats weekend;
  for (std::size_t k = 0; k < trace.sample_count(); ++k) {
    const double t = static_cast<double>(k) * trace.sample_period_s();
    const double hour = std::fmod(t / 3600.0, 24.0);
    const bool is_weekend = (static_cast<int>(t / 86400.0) % 7) >= 5;
    (is_weekend ? weekend : weekday).add(cluster_mean[k]);
    if (!is_weekend) {
      if (hour >= 9.0 && hour < 17.0) business.add(cluster_mean[k]);
      if (hour < 5.0) night.add(cluster_mean[k]);
    }
  }
  profile.business_hours_mean = business.mean();
  profile.night_mean = night.mean();
  profile.diurnal_ratio =
      night.mean() > 0.0 ? business.mean() / night.mean() : 0.0;
  profile.weekday_mean = weekday.mean();
  profile.weekend_mean = weekend.mean();

  // Per-label: average the label's servers sample-wise, then profile.
  if (trace.labels.size() == trace.server_count()) {
    std::map<std::string, std::vector<std::size_t>> members;
    for (std::size_t s = 0; s < trace.server_count(); ++s) {
      members[trace.labels[s]].push_back(s);
    }
    for (const auto& [label, servers] : members) {
      if (label.empty()) continue;
      std::vector<double> mean_series(trace.sample_count(), 0.0);
      for (const std::size_t s : servers) {
        const auto series = trace.series(s);
        for (std::size_t k = 0; k < series.size(); ++k) mean_series[k] += series[k];
      }
      for (double& v : mean_series) v /= static_cast<double>(servers.size());
      profile.by_label[label] = profile_series(mean_series);
    }
  }
  return profile;
}

std::string to_string(const TraceProfile& profile) {
  std::ostringstream out;
  out.precision(3);
  out << "overall: mean " << profile.overall.mean << ", std " << profile.overall.stddev
      << ", peak/mean " << profile.overall.peak_to_mean << ", lag-1 ac "
      << profile.overall.autocorrelation_lag1 << '\n';
  out << "diurnal: business " << profile.business_hours_mean << " vs night "
      << profile.night_mean << " (ratio " << profile.diurnal_ratio << ")\n";
  out << "weekly: weekday " << profile.weekday_mean << " vs weekend "
      << profile.weekend_mean << '\n';
  for (const auto& [label, series] : profile.by_label) {
    out << "sector " << label << ": mean " << series.mean << ", peak/mean "
        << series.peak_to_mean << '\n';
  }
  return out.str();
}

}  // namespace vdc::trace
