// CSV import/export so users with access to a real utilization trace (the
// paper's is proprietary) can feed it to the simulator unchanged.
//
// Format: header "server,label,u0,u1,...,u{N-1}"; one row per server with
// the label column optional on import.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "trace/trace.hpp"

namespace vdc::trace {

void write_trace_csv(std::ostream& out, const UtilizationTrace& trace);
void write_trace_csv_file(const std::filesystem::path& path, const UtilizationTrace& trace);

[[nodiscard]] UtilizationTrace read_trace_csv(std::istream& in,
                                              double sample_period_s = kPaperSamplePeriodS);
[[nodiscard]] UtilizationTrace read_trace_csv_file(
    const std::filesystem::path& path, double sample_period_s = kPaperSamplePeriodS);

}  // namespace vdc::trace
