// Synthetic stand-in for the paper's proprietary utilization trace.
//
// The real trace covers 5,415 servers from ten companies in manufacturing,
// telecommunications, financial and retail sectors over one week at 15-min
// resolution. This generator reproduces the features the consolidation
// algorithms actually feed on: low average utilization with pronounced
// diurnal peaks, sector-specific shapes (business-hours finance vs. flat
// 24/7 telecom), weekday/weekend contrast, AR(1) noise and occasional
// bursts. Seeded and fully deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace vdc::trace {

struct SectorProfile {
  std::string name;
  double base_mean = 0.15;      ///< long-run utilization floor
  double base_spread = 0.05;    ///< per-server variation of the floor
  double diurnal_amplitude = 0.35;
  double peak_hour = 14.0;      ///< local time of the daily peak
  double peak_width_h = 4.0;    ///< gaussian width of the peak
  double second_peak_hour = -1.0;  ///< < 0 disables the second peak
  double weekend_factor = 0.5;  ///< multiplier on the diurnal part Sat/Sun
  double noise_sigma = 0.03;    ///< AR(1) innovation std
  double noise_phi = 0.7;       ///< AR(1) coefficient
  double burst_probability = 0.002;  ///< per-sample chance of a burst
  double burst_amplitude = 0.35;
  double burst_decay = 0.6;     ///< burst geometric decay per sample
};

/// The four sectors named in the paper (weights sum to 1 in the default mix).
[[nodiscard]] std::vector<SectorProfile> default_sector_profiles();

struct SyntheticTraceOptions {
  std::size_t servers = kPaperServerCount;
  std::size_t samples = kPaperSampleCount;
  double sample_period_s = kPaperSamplePeriodS;
  std::uint64_t seed = 2008'07'14;
  /// Sector mix; defaults to default_sector_profiles() with equal-ish
  /// weights when empty.
  std::vector<SectorProfile> sectors;
  std::vector<double> sector_weights;
};

[[nodiscard]] UtilizationTrace generate_synthetic_trace(const SyntheticTraceOptions& options = {});

}  // namespace vdc::trace
