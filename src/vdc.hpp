// Umbrella header: the public API of the vdc-power library.
//
//   #include "vdc.hpp"
//
// pulls in the two-level power-management system (response-time control +
// power optimization) and every substrate. Fine-grained headers remain
// available for faster builds.
#pragma once

// Utilities.
#include "util/csv.hpp"          // IWYU pragma: export
#include "util/log.hpp"          // IWYU pragma: export
#include "util/rng.hpp"          // IWYU pragma: export
#include "util/statistics.hpp"   // IWYU pragma: export
#include "util/thread_pool.hpp"  // IWYU pragma: export
#include "util/time_series.hpp"  // IWYU pragma: export

// Linear algebra / optimization.
#include "linalg/cholesky.hpp"  // IWYU pragma: export
#include "linalg/eigen.hpp"     // IWYU pragma: export
#include "linalg/lu.hpp"        // IWYU pragma: export
#include "linalg/matrix.hpp"    // IWYU pragma: export
#include "linalg/qp.hpp"        // IWYU pragma: export
#include "linalg/qr.hpp"        // IWYU pragma: export

// Discrete-event simulation.
#include "sim/ps_queue.hpp"    // IWYU pragma: export
#include "sim/simulation.hpp"  // IWYU pragma: export

// Multi-tier applications.
#include "app/monitor.hpp"         // IWYU pragma: export
#include "app/multi_tier_app.hpp"  // IWYU pragma: export
#include "app/queueing.hpp"        // IWYU pragma: export
#include "app/workload.hpp"        // IWYU pragma: export

// Virtualized data center.
#include "datacenter/arbitrator.hpp"   // IWYU pragma: export
#include "datacenter/cluster.hpp"      // IWYU pragma: export
#include "datacenter/cpu_spec.hpp"     // IWYU pragma: export
#include "datacenter/migration.hpp"    // IWYU pragma: export
#include "datacenter/power_model.hpp"  // IWYU pragma: export
#include "datacenter/server.hpp"       // IWYU pragma: export

// Control.
#include "control/arx.hpp"        // IWYU pragma: export
#include "control/mpc.hpp"        // IWYU pragma: export
#include "control/reference.hpp"  // IWYU pragma: export
#include "control/stability.hpp"  // IWYU pragma: export
#include "control/sysid.hpp"      // IWYU pragma: export
#include "control/tuning.hpp"     // IWYU pragma: export

// Consolidation.
#include "consolidate/constraints.hpp"        // IWYU pragma: export
#include "consolidate/cost_policy.hpp"        // IWYU pragma: export
#include "consolidate/ffd.hpp"                // IWYU pragma: export
#include "consolidate/ipac.hpp"               // IWYU pragma: export
#include "consolidate/minimum_slack.hpp"      // IWYU pragma: export
#include "consolidate/pac.hpp"                // IWYU pragma: export
#include "consolidate/pmapper.hpp"            // IWYU pragma: export
#include "consolidate/snapshot.hpp"           // IWYU pragma: export
#include "consolidate/working_placement.hpp"  // IWYU pragma: export

// Traces.
#include "trace/analysis.hpp"   // IWYU pragma: export
#include "trace/forecast.hpp"   // IWYU pragma: export
#include "trace/synthetic.hpp"  // IWYU pragma: export
#include "trace/trace.hpp"      // IWYU pragma: export
#include "trace/trace_io.hpp"   // IWYU pragma: export

// Integration layer.
#include "core/overload_guard.hpp"            // IWYU pragma: export
#include "core/power_optimizer.hpp"           // IWYU pragma: export
#include "core/response_time_controller.hpp"  // IWYU pragma: export
#include "core/sysid_experiment.hpp"          // IWYU pragma: export
#include "core/testbed.hpp"                   // IWYU pragma: export
#include "core/trace_sim.hpp"                 // IWYU pragma: export
