#include "control/robust.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdc::control {

void RobustConfig::validate() const {
  if (gain_margin < 0.0 || gain_margin >= 1.0 || !std::isfinite(gain_margin)) {
    throw std::invalid_argument("RobustConfig: gain_margin must be in [0, 1)");
  }
  if (!(setpoint_margin > 0.0) || setpoint_margin > 1.0 || !std::isfinite(setpoint_margin)) {
    throw std::invalid_argument("RobustConfig: setpoint_margin must be in (0, 1]");
  }
  if (!std::isfinite(release_slew_ghz)) {
    throw std::invalid_argument("RobustConfig: release_slew_ghz must be finite");
  }
  if (spike_window == 0) {
    throw std::invalid_argument("RobustConfig: spike_window must be >= 1");
  }
}

ArxModel derate_gain(ArxModel model, double gain_margin) {
  if (gain_margin < 0.0 || gain_margin >= 1.0) {
    throw std::invalid_argument("derate_gain: gain_margin must be in [0, 1)");
  }
  const double scale = 1.0 - gain_margin;
  for (std::size_t j = 0; j < model.nb; ++j) {
    for (std::size_t m = 0; m < model.nu; ++m) model.b(j, m) *= scale;
  }
  return model;
}

MedianFilter::MedianFilter(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("MedianFilter: window must be >= 1");
  history_.reserve(window_);
}

double MedianFilter::apply(double sample) {
  if (history_.size() < window_) {
    history_.push_back(sample);
  } else {
    history_[next_] = sample;
    next_ = (next_ + 1) % window_;
  }
  std::vector<double> sorted = history_;
  const std::size_t mid = (sorted.size() - 1) / 2;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(mid), sorted.end());
  return sorted[mid];
}

}  // namespace vdc::control
