// Automatic MPC tuning: scan a small grid of (control horizon, control
// penalty, reference time constant) candidates, keep only configurations
// whose nominal closed loop is output-stable with offset-free tracking
// (via analyze_closed_loop), and return the one with the fastest output
// decay. This packages the paper's "analyze the control performance" step
// into the deployment workflow: identify -> tune -> verify -> run.
#pragma once

#include <vector>

#include "control/arx.hpp"
#include "control/mpc.hpp"
#include "control/stability.hpp"

namespace vdc::control {

struct TuningOptions {
  /// Template providing the fixed parts: period, set point, bounds, rate
  /// limit, terminal mode, prediction horizon.
  MpcConfig base;
  std::vector<std::size_t> control_horizons = {2, 3, 4};
  std::vector<double> r_weights = {0.2, 0.5, 1.0, 2.0, 5.0};
  /// Candidate Tref values as multiples of the control period.
  std::vector<double> tref_factors = {3.0, 4.0, 6.0};
  /// Require decay <= 1 - margin to accept a candidate.
  double stability_margin = 0.02;
  /// Maximum |steady-state error| accepted (absolute, output units).
  double max_steady_state_error = 1e-3;
};

struct TuningResult {
  bool found = false;
  MpcConfig config;          ///< best accepted configuration (if found)
  StabilityReport report;    ///< its nominal analysis
  std::size_t evaluated = 0;
  std::size_t stable_candidates = 0;
};

/// Deterministic exhaustive scan (the grid is tiny); throws only on an
/// invalid base configuration or model.
[[nodiscard]] TuningResult tune_mpc(const ArxModel& model, const TuningOptions& options);

}  // namespace vdc::control
