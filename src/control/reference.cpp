#include "control/reference.hpp"

#include <cmath>
#include <stdexcept>

namespace vdc::control {

ReferenceTrajectory::ReferenceTrajectory(double period_s, double tref_s)
    : period_s_(period_s), tref_s_(tref_s) {
  if (!(period_s > 0.0)) throw std::invalid_argument("ReferenceTrajectory: period");
  if (!(tref_s > 0.0)) throw std::invalid_argument("ReferenceTrajectory: time constant");
}

double ReferenceTrajectory::at(std::size_t i, double current, double setpoint) const {
  const double decay = std::exp(-static_cast<double>(i) * period_s_ / tref_s_);
  return setpoint - decay * (setpoint - current);
}

std::vector<double> ReferenceTrajectory::horizon(std::size_t p, double current,
                                                 double setpoint) const {
  std::vector<double> out;
  out.reserve(p);
  for (std::size_t i = 1; i <= p; ++i) out.push_back(at(i, current, setpoint));
  return out;
}

}  // namespace vdc::control
