// ARX (AutoRegressive with eXogenous inputs) response-time model:
//
//   t(k) = sum_{i=1..na} a_i t(k-i) + sum_{j=1..nb} b_j^T c(k-j) + bias
//
// with scalar output t (the application's 90-percentile response time) and
// vector input c (the CPU allocations of the VMs hosting its tiers). This
// is the model class the paper identifies in Section IV-B, e.g. equation
// (1): t1(k) = a11 t1(k-1) + b11 c1(k-1) + b12 c1(k-2) + gamma.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace vdc::control {

struct ArxModel {
  std::size_t na = 1;  ///< output lags
  std::size_t nb = 2;  ///< input lags
  std::size_t nu = 1;  ///< number of inputs (VMs of the application)
  /// a[i-1] multiplies t(k-i).
  std::vector<double> a;
  /// b(j-1, m) multiplies c_m(k-j).
  linalg::Matrix b;
  /// Constant disturbance term (gamma in the paper).
  double bias = 0.0;

  /// One-step prediction. `t_hist[i]` = t(k-1-i) (most recent first,
  /// length >= na); `c_hist[j]` = c(k-1-j) (most recent first, length >= nb,
  /// each of size nu).
  [[nodiscard]] double predict(std::span<const double> t_hist,
                               std::span<const std::vector<double>> c_hist) const;

  /// Number of regression coefficients (na + nb*nu + 1 for the bias).
  [[nodiscard]] std::size_t parameter_count() const noexcept { return na + nb * nu + 1; }

  /// Open-loop stability of the AR part (roots of 1 - sum a_i z^-i inside
  /// the unit circle), estimated via the companion-matrix spectral radius.
  [[nodiscard]] bool ar_stable() const;

  /// Steady-state gain from each input to the output (dc gain): the change
  /// in stationary t per unit change in c_m.
  [[nodiscard]] std::vector<double> dc_gain() const;

  /// Throws std::invalid_argument on inconsistent dimensions.
  void validate() const;
};

}  // namespace vdc::control
