#include "control/tuning.hpp"

#include <cmath>
#include <stdexcept>

namespace vdc::control {

TuningResult tune_mpc(const ArxModel& model, const TuningOptions& options) {
  model.validate();
  if (options.control_horizons.empty() || options.r_weights.empty() ||
      options.tref_factors.empty()) {
    throw std::invalid_argument("tune_mpc: empty candidate grid");
  }

  TuningResult result;
  double best_decay = 2.0;
  for (const std::size_t m : options.control_horizons) {
    for (const double r : options.r_weights) {
      for (const double tref_factor : options.tref_factors) {
        MpcConfig candidate = options.base;
        candidate.control_horizon = m;
        if (candidate.prediction_horizon < m) candidate.prediction_horizon = 4 * m;
        candidate.r_weight = {r};
        candidate.tref_s = tref_factor * candidate.period_s;
        ++result.evaluated;
        StabilityReport report;
        try {
          report = analyze_closed_loop(model, candidate);
        } catch (const std::exception&) {
          continue;  // degenerate candidate (e.g. singular QP)
        }
        const bool acceptable =
            report.stable &&
            report.output_decay_rate <= 1.0 - options.stability_margin &&
            std::abs(report.steady_state_error) <= options.max_steady_state_error;
        if (!acceptable) continue;
        ++result.stable_candidates;
        if (report.output_decay_rate < best_decay) {
          best_decay = report.output_decay_rate;
          result.found = true;
          result.config = candidate;
          result.report = report;
        }
      }
    }
  }
  return result;
}

}  // namespace vdc::control
