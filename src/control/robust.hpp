// Robust-control hardening of the paper's nominal MPC, after Makridis et
// al. ("Robust Dynamic CPU Resource Provisioning in Virtualized Servers"):
// the identified ARX model is only trusted up to a multiplicative gain
// uncertainty, the measurement channel is only trusted up to isolated
// spikes, and capacity release is rate-limited so an optimistic transient
// cannot strip a tier of CPU it still needs.
//
// Concretely the robust variant of ResponseTimeController:
//  * derates the model's input gain by `gain_margin` — the controller plans
//    as if CPU were (1 - margin)x as effective as identified, so under
//    worst-case model mismatch it over-provisions rather than under;
//  * tracks a tightened internal setpoint (`setpoint_margin` x SLA) to keep
//    slack against the real SLO;
//  * feeds the MPC a windowed-median of the measurement, which rejects
//    isolated sensor spikes without adding lag on sustained shifts;
//  * caps per-period allocation release at `release_slew_ghz` (the MPC's
//    asymmetric `delta_down_max`) while grants keep the full rate.
#pragma once

#include <cstddef>
#include <vector>

#include "control/arx.hpp"

namespace vdc::control {

struct RobustConfig {
  /// Multiplicative uncertainty on the identified input gain: the model's
  /// `b` coefficients are scaled by (1 - gain_margin). In [0, 1).
  double gain_margin = 0.3;
  /// The controller tracks setpoint * setpoint_margin, keeping slack
  /// against the actual SLO. In (0, 1].
  double setpoint_margin = 0.9;
  /// Max allocation release per input per period (GHz); <= 0 keeps the
  /// symmetric rate limit.
  double release_slew_ghz = 0.1;
  /// Window of the measurement median filter (odd; 1 disables filtering).
  std::size_t spike_window = 3;

  void validate() const;
};

/// Returns `model` with every input-gain coefficient (the `b` matrix)
/// scaled by (1 - gain_margin). The autoregressive part and bias are
/// untouched: the uncertainty budget is on how much a GHz buys, not on the
/// plant's memory.
[[nodiscard]] ArxModel derate_gain(ArxModel model, double gain_margin);

/// Deterministic running median over the last `window` samples. Odd
/// windows take the exact middle; even ones the lower middle. With fewer
/// samples than the window, the median of what has been seen so far.
class MedianFilter {
 public:
  explicit MedianFilter(std::size_t window);

  /// Pushes a sample, returns the median of the current window.
  [[nodiscard]] double apply(double sample);

  [[nodiscard]] std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
  std::vector<double> history_;  // ring buffer, oldest overwritten
  std::size_t next_ = 0;
};

}  // namespace vdc::control
