#include "control/mpc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/control_audit.hpp"
#include "linalg/qp.hpp"
#include "util/log.hpp"

namespace vdc::control {

void MpcConfig::validate(std::size_t nu) const {
  if (prediction_horizon == 0) throw std::invalid_argument("MpcConfig: P must be positive");
  if (control_horizon == 0 || control_horizon > prediction_horizon) {
    throw std::invalid_argument("MpcConfig: need 0 < M <= P");
  }
  if (!(q_weight > 0.0)) throw std::invalid_argument("MpcConfig: Q must be positive");
  if (r_weight.size() != nu) throw std::invalid_argument("MpcConfig: R width mismatch");
  for (const double r : r_weight) {
    if (!(r > 0.0)) throw std::invalid_argument("MpcConfig: R entries must be positive");
  }
  if (c_min.size() != nu || c_max.size() != nu) {
    throw std::invalid_argument("MpcConfig: bound width mismatch");
  }
  for (std::size_t m = 0; m < nu; ++m) {
    if (!(c_min[m] >= 0.0) || !(c_max[m] > c_min[m])) {
      throw std::invalid_argument("MpcConfig: need 0 <= c_min < c_max");
    }
  }
  if (!(period_s > 0.0) || !(tref_s > 0.0)) {
    throw std::invalid_argument("MpcConfig: period and Tref must be positive");
  }
  if (delta_down_max > 0.0 && !(delta_max > 0.0)) {
    throw std::invalid_argument("MpcConfig: delta_down_max needs delta_max > 0");
  }
  if (delta_down_max > 0.0 && delta_down_max > delta_max) {
    throw std::invalid_argument("MpcConfig: delta_down_max must not exceed delta_max");
  }
}

MpcConfig MpcConfig::broadcast(std::size_t nu) const {
  MpcConfig out = *this;
  const auto broadcast_vec = [nu](std::vector<double>& v, const char* what) {
    if (v.size() == 1 && nu > 1) v.assign(nu, v.front());
    if (v.size() != nu) {
      throw std::invalid_argument(std::string("MpcConfig: cannot broadcast ") + what);
    }
  };
  broadcast_vec(out.r_weight, "r_weight");
  broadcast_vec(out.c_min, "c_min");
  broadcast_vec(out.c_max, "c_max");
  return out;
}

MpcController::MpcController(ArxModel model, MpcConfig config)
    : model_(std::move(model)),
      config_(config.broadcast(model_.nu)),
      reference_(config.period_s, config.tref_s) {
  model_.validate();
  config_.validate(model_.nu);
  compute_step_response();

  // Prediction matrix G: row i-1 (prediction step i), column j*nu+m holds
  // s_m(i-j) — the effect of move dc(k+j) on t(k+i).
  const std::size_t p = config_.prediction_horizon;
  const std::size_t m_horizon = config_.control_horizon;
  const std::size_t nu = model_.nu;
  g_ = linalg::Matrix(p, m_horizon * nu);
  for (std::size_t i = 1; i <= p; ++i) {
    for (std::size_t j = 0; j < m_horizon; ++j) {
      if (i <= j) continue;
      for (std::size_t m = 0; m < nu; ++m) {
        g_(i - 1, j * nu + m) = step_response_(i - j - 1, m);
      }
    }
  }

  // Constant Hessian: H = 2 (G' Q G + Rbar) (+ soft terminal term).
  const std::size_t nx = m_horizon * nu;
  hessian_ = g_.transpose() * g_ * (2.0 * config_.q_weight);
  for (std::size_t j = 0; j < m_horizon; ++j) {
    for (std::size_t m = 0; m < nu; ++m) {
      hessian_(j * nu + m, j * nu + m) += 2.0 * config_.r_weight[m];
    }
  }
  if (config_.terminal == MpcConfig::Terminal::kSoft) {
    const double w = 2.0 * config_.q_weight * config_.terminal_weight;
    for (std::size_t r = 0; r < nx; ++r) {
      for (std::size_t c = 0; c < nx; ++c) {
        hessian_(r, c) += w * g_(m_horizon - 1, r) * g_(m_horizon - 1, c);
      }
    }
  }
}

void MpcController::compute_step_response() {
  // Simulate the ARX model from zero initial conditions (no bias) with a
  // unit step on each input in turn; record the output over the prediction
  // horizon. Linear superposition then gives any input trajectory.
  const std::size_t p = config_.prediction_horizon;
  const std::size_t nu = model_.nu;
  step_response_ = linalg::Matrix(p, nu);
  ArxModel unbiased = model_;
  unbiased.bias = 0.0;  // the step response is the *deviation* response
  for (std::size_t m = 0; m < nu; ++m) {
    std::vector<double> t_hist(model_.na, 0.0);
    std::vector<std::vector<double>> c_hist(model_.nb, std::vector<double>(nu, 0.0));
    std::vector<double> step(nu, 0.0);
    step[m] = 1.0;
    // c(k+j) = step for j >= 0; history starts with c(k-1)=...=0.
    for (std::size_t i = 1; i <= p; ++i) {
      // Advance input history: entering period k+i, the most recent input
      // is c(k+i-1) = step.
      c_hist.insert(c_hist.begin(), step);
      c_hist.pop_back();
      const double t = unbiased.predict(t_hist, c_hist);
      step_response_(i - 1, m) = t;
      t_hist.insert(t_hist.begin(), t);
      t_hist.pop_back();
    }
  }
}

std::vector<double> MpcController::free_response() const {
  // Forward-simulate the model over P steps with the input held at c(k-1).
  // The estimated disturbance enters INSIDE the recursion (like the bias
  // term) so it propagates through the AR dynamics — required for
  // offset-free tracking under constant model error.
  const std::size_t p = config_.prediction_horizon;
  std::vector<double> t_hist = t_hist_;
  std::vector<std::vector<double>> c_hist = c_hist_;
  const std::vector<double> held = c_hist_.front();
  std::vector<double> f(p);
  for (std::size_t i = 1; i <= p; ++i) {
    c_hist.insert(c_hist.begin(), held);
    c_hist.pop_back();
    const double t = model_.predict(t_hist, c_hist) + disturbance_;
    f[i - 1] = t;
    t_hist.insert(t_hist.begin(), t);
    t_hist.pop_back();
  }
  return f;
}

void MpcController::reset(double t0, std::span<const double> c0) {
  if (c0.size() != model_.nu) throw std::invalid_argument("MpcController::reset: c0 width");
  t_hist_.assign(model_.na, t0);
  c_hist_.assign(model_.nb, std::vector<double>(c0.begin(), c0.end()));
  disturbance_ = 0.0;
  initialized_ = true;
}

std::vector<double> MpcController::current_allocations() const {
  if (!initialized_) throw std::logic_error("MpcController: reset() before querying");
  return c_hist_.front();
}

std::vector<double> MpcController::hold() {
  if (!initialized_) throw std::logic_error("MpcController: reset() before hold()");
  const double predicted = model_.predict(t_hist_, c_hist_) + disturbance_;
  t_hist_.insert(t_hist_.begin(), predicted);
  t_hist_.pop_back();
  const std::vector<double> held = c_hist_.front();
  c_hist_.insert(c_hist_.begin(), held);
  c_hist_.pop_back();
  return held;
}

std::vector<double> MpcController::step(double measured_output) {
  if (!initialized_) throw std::logic_error("MpcController: reset() before step()");
  const std::size_t p = config_.prediction_horizon;
  const std::size_t m_horizon = config_.control_horizon;
  const std::size_t nu = model_.nu;
  const std::size_t nx = m_horizon * nu;

  // Feedback correction (DMC): how far off was the one-step prediction?
  if (config_.disturbance_gain > 0.0) {
    const double predicted = model_.predict(t_hist_, c_hist_);
    disturbance_ += config_.disturbance_gain *
                    ((measured_output - predicted) - disturbance_);
  }

  // Feedback: t(k) enters the model history.
  t_hist_.insert(t_hist_.begin(), measured_output);
  t_hist_.pop_back();

  const std::vector<double> f = free_response();
  const std::vector<double> ref =
      reference_.horizon(p, measured_output, config_.setpoint);

  // Gradient: g = 2 G' Q (f - ref).
  std::vector<double> err(p);
  for (std::size_t i = 0; i < p; ++i) err[i] = f[i] - ref[i];
  linalg::Vector grad = g_.transpose() * std::span<const double>(err);
  for (double& v : grad) v *= 2.0 * config_.q_weight;

  // Terminal constraint: t(k+M|k) = Ts — hard equality or soft penalty.
  linalg::Matrix a_eq;
  linalg::Vector b_eq;
  if (config_.terminal == MpcConfig::Terminal::kHard) {
    double row_norm = 0.0;
    for (std::size_t c = 0; c < nx; ++c) {
      row_norm += g_(m_horizon - 1, c) * g_(m_horizon - 1, c);
    }
    if (row_norm > 1e-16) {
      a_eq = linalg::Matrix(1, nx);
      for (std::size_t c = 0; c < nx; ++c) a_eq(0, c) = g_(m_horizon - 1, c);
      b_eq.assign(1, config_.setpoint - f[m_horizon - 1]);
    }
  } else if (config_.terminal == MpcConfig::Terminal::kSoft) {
    // grad += 2 Q w_T G_M' (f_M - Ts); the Hessian term is precomputed.
    const double w = 2.0 * config_.q_weight * config_.terminal_weight;
    const double residual = f[m_horizon - 1] - config_.setpoint;
    for (std::size_t c = 0; c < nx; ++c) {
      grad[c] += w * g_(m_horizon - 1, c) * residual;
    }
  }

  // Inequalities: actuator range on the cumulative allocation and the
  // per-move rate limit.
  const std::vector<double>& c_prev = c_hist_.front();
  std::vector<std::vector<double>> rows;
  std::vector<double> gamma;
  for (std::size_t j = 0; j < m_horizon; ++j) {
    for (std::size_t m = 0; m < nu; ++m) {
      // sum_{l<=j} dc_m(l) <= c_max[m] - c_prev[m]
      std::vector<double> row(nx, 0.0);
      for (std::size_t l = 0; l <= j; ++l) row[l * nu + m] = 1.0;
      rows.push_back(row);
      gamma.push_back(config_.c_max[m] - c_prev[m]);
      // -sum <= c_prev[m] - c_min[m]
      for (double& v : row) v = -v;
      rows.push_back(std::move(row));
      gamma.push_back(c_prev[m] - config_.c_min[m]);
    }
  }
  if (config_.delta_max > 0.0) {
    // Asymmetric release limit when configured: dc >= -delta_down_max.
    const double delta_down = config_.delta_down_max > 0.0 ? config_.delta_down_max
                                                           : config_.delta_max;
    for (std::size_t idx = 0; idx < nx; ++idx) {
      std::vector<double> row(nx, 0.0);
      row[idx] = 1.0;
      rows.push_back(row);
      gamma.push_back(config_.delta_max);
      row.assign(nx, 0.0);
      row[idx] = -1.0;
      rows.push_back(std::move(row));
      gamma.push_back(delta_down);
    }
  }
  linalg::Matrix m_ineq(rows.size(), nx);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < nx; ++c) m_ineq(r, c) = rows[r][c];
  }

  linalg::QpResult qp;
  bool solved = false;
  bool equality_constrained = false;
  try {
    qp = linalg::solve_general_qp(hessian_, grad, a_eq, b_eq, m_ineq, gamma);
    solved = true;
    equality_constrained = a_eq.rows() > 0;
  } catch (const std::exception& e) {
    util::Log(util::LogLevel::kWarn, "mpc")
        << "terminal-constrained QP failed (" << e.what() << "); retrying unconstrained";
  }
  if (!solved) {
    try {
      qp = linalg::solve_general_qp(hessian_, grad, linalg::Matrix(), {}, m_ineq, gamma);
      solved = true;
    } catch (const std::exception& e) {
      util::Log(util::LogLevel::kError, "mpc") << "QP failed: " << e.what() << "; holding";
      qp.x.assign(nx, 0.0);
      qp.converged = false;
    }
  }
  if (solved) audit::qp_solution(hessian_, grad, m_ineq, gamma, qp, equality_constrained);

  if (util::log_enabled(util::LogLevel::kDebug)) {
    util::Log dbg(util::LogLevel::kDebug, "mpc");
    dbg << "f=[";
    for (double v : f) dbg << v << " ";
    dbg << "] ref=[";
    for (double v : ref) dbg << v << " ";
    dbg << "] grad=[";
    for (double v : grad) dbg << v << " ";
    dbg << "] x=[";
    for (double v : qp.x) dbg << v << " ";
    dbg << "] d=" << disturbance_;
  }

  diagnostics_.qp_converged = qp.converged;
  diagnostics_.qp_iterations = qp.iterations;
  diagnostics_.cost = qp.objective;
  {
    double terminal_s = f[m_horizon - 1];
    for (std::size_t c = 0; c < nx; ++c) terminal_s += g_(m_horizon - 1, c) * qp.x[c];
    diagnostics_.predicted_terminal = terminal_s;
  }

  // Receding horizon: apply only the first move, clamped to the actuator.
  std::vector<double> c_new(nu);
  for (std::size_t m = 0; m < nu; ++m) {
    double dc = qp.x[m];
    if (config_.delta_max > 0.0) {
      const double delta_down = config_.delta_down_max > 0.0 ? config_.delta_down_max
                                                             : config_.delta_max;
      dc = std::clamp(dc, -delta_down, config_.delta_max);
    }
    c_new[m] = std::clamp(c_prev[m] + dc, config_.c_min[m], config_.c_max[m]);
  }
  audit::allocation_bounds(c_new, config_.c_min, config_.c_max);
  c_hist_.insert(c_hist_.begin(), c_new);
  c_hist_.pop_back();
  return c_new;
}

}  // namespace vdc::control
