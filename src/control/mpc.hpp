// MIMO Model-Predictive response-time controller (Section IV).
//
// At the end of every control period the controller minimizes
//
//   J(k) = sum_{i=1..P} || t(k+i|k) - ref(k+i|k) ||^2_Q
//        + sum_{i=0..M-1} || dc(k+i|k) ||^2_R            (equation 2)
//
// over the input trajectory dc(k), ..., dc(k+M-1|k), subject to
//
//   t(k+M|k) = Ts                 (terminal constraint, equation 4)
//   c_min <= c(k+i|k) <= c_max    (actuator range)
//   |dc| <= delta_max             (rate limit, optional)
//
// using the identified ARX model for prediction, then applies only the
// first move dc(k) (receding horizon). The predictions are built in DMC
// form: free response (inputs held) plus step-response convolution of the
// future moves.
#pragma once

#include <optional>
#include <vector>

#include "control/arx.hpp"
#include "control/reference.hpp"
#include "linalg/matrix.hpp"

namespace vdc::control {

struct MpcConfig {
  std::size_t prediction_horizon = 8;  ///< P
  std::size_t control_horizon = 2;     ///< M (<= P)
  double q_weight = 1.0;               ///< tracking error weight Q
  /// Control penalty per input (R(i) in the paper); higher = that VM's
  /// allocation changes more reluctantly. Must be positive. Resized/
  /// broadcast to the model's input count when a single value is given.
  std::vector<double> r_weight = {0.01};
  double period_s = 4.0;   ///< control period T
  double tref_s = 12.0;    ///< reference trajectory time constant
  double setpoint = 1.0;   ///< Ts, in the output's unit (seconds here)
  std::vector<double> c_min = {0.05};  ///< per-input lower bound (GHz)
  std::vector<double> c_max = {4.0};   ///< per-input upper bound (GHz)
  /// Max |dc| per input per period; <= 0 disables the rate limit.
  double delta_max = 0.5;
  /// Asymmetric downward rate limit: max allocation *release* per period.
  /// <= 0 keeps the limit symmetric (|dc| <= delta_max). A tighter release
  /// rate is the robust-control guard of Makridis et al.: capacity taken
  /// away on the strength of an optimistic (possibly spiked or mismatched)
  /// measurement can only leak out slowly, while capacity is still granted
  /// at the full delta_max when the SLA is threatened.
  double delta_down_max = 0.0;
  /// Terminal constraint handling (equation 4). kHard is the paper's exact
  /// formulation — an equality t(k+M|k) = Ts — but becomes *infeasible*
  /// against the actuator range/rate limits after a large disturbance
  /// (the paper assumes feasibility, Section IV-A). kSoft replaces it with
  /// a heavily weighted terminal penalty: identical behavior when the hard
  /// constraint is feasible and inactive elsewhere, graceful degradation
  /// when it is not. kOff disables it.
  enum class Terminal { kHard, kSoft, kOff };
  Terminal terminal = Terminal::kSoft;
  /// Weight of the soft terminal penalty, relative to q_weight.
  double terminal_weight = 50.0;
  /// DMC-style feedback correction: the one-step prediction error d(k) =
  /// t(k) - t_hat(k|k-1) is low-pass filtered with this gain (1 = use the
  /// latest error directly, 0 = no correction) and added to every
  /// prediction. Zero under nominal dynamics; it is what makes the loop
  /// robust to the model being identified on a different operating region
  /// (Figures 4-5 of the paper).
  double disturbance_gain = 1.0;

  void validate(std::size_t nu) const;
  /// Broadcasts scalar-valued per-input fields to width nu.
  [[nodiscard]] MpcConfig broadcast(std::size_t nu) const;
};

struct MpcDiagnostics {
  bool qp_converged = true;
  std::size_t qp_iterations = 0;
  double predicted_terminal = 0.0;  ///< t(k+M|k) under the optimized plan
  double cost = 0.0;
};

class MpcController {
 public:
  MpcController(ArxModel model, MpcConfig config);

  /// Initializes the internal history with a steady state: output t0,
  /// allocations c0. Must be called before the first step().
  void reset(double t0, std::span<const double> c0);

  /// One control period: feed back the measured output t(k), receive the
  /// allocation vector c(k) to apply for the next period.
  [[nodiscard]] std::vector<double> step(double measured_output);

  /// Degraded control period for when the measurement is missing or flagged
  /// stale: keeps the previous allocation, advances the internal history
  /// with the model's own one-step prediction (so the clock of the ARX
  /// state stays aligned with real time), and leaves the disturbance
  /// estimate untouched — no new information arrived, so no correction is
  /// justified. Returns the held allocation.
  [[nodiscard]] std::vector<double> hold();

  void set_setpoint(double setpoint) noexcept { config_.setpoint = setpoint; }
  [[nodiscard]] double setpoint() const noexcept { return config_.setpoint; }
  [[nodiscard]] const MpcConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ArxModel& model() const noexcept { return model_; }
  [[nodiscard]] const MpcDiagnostics& diagnostics() const noexcept { return diagnostics_; }
  [[nodiscard]] std::vector<double> current_allocations() const;

  /// Step-response coefficients s_m(i), i=1..P: output response at step i
  /// to a unit step on input m (exposed for analysis/tests).
  [[nodiscard]] const linalg::Matrix& step_response() const noexcept { return step_response_; }

 private:
  void compute_step_response();
  [[nodiscard]] std::vector<double> free_response() const;

  ArxModel model_;
  MpcConfig config_;
  ReferenceTrajectory reference_;
  linalg::Matrix step_response_;  // P x nu
  linalg::Matrix g_;              // P x (M*nu), prediction matrix
  linalg::Matrix hessian_;        // QP Hessian (constant)
  std::vector<double> t_hist_;               // t(k), t(k-1), ... (most recent first)
  std::vector<std::vector<double>> c_hist_;  // c(k-1), c(k-2), ... (most recent first)
  double disturbance_ = 0.0;                 // filtered one-step prediction error
  bool initialized_ = false;
  MpcDiagnostics diagnostics_;
};

}  // namespace vdc::control
