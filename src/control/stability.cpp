#include "control/stability.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/eigen.hpp"
#include "linalg/lu.hpp"
#include "linalg/qp.hpp"
#include "control/reference.hpp"

namespace vdc::control {

namespace {

// State layout: s = [t(k) ... t(k-na+1), c(k-1)^T ... c(k-nc)^T] with
// nc = max(nb-1, 1) input blocks (c(k-1) is always needed: it is the value
// the free response holds).
struct StateSpace {
  std::size_t na;
  std::size_t nc;
  std::size_t nu;
  [[nodiscard]] std::size_t dim() const noexcept { return na + nc * nu; }
};

// Simulates the ARX model i steps ahead from state s with the input held at
// c(k-1) (+ an optional first-move delta), returning the predicted outputs.
// `bias_on` toggles the affine part so the same routine yields both the
// full map and its linear part.
std::vector<double> rollout(const ArxModel& model, const StateSpace& ss,
                            std::span<const double> s, std::size_t steps, bool bias_on) {
  std::vector<double> t_hist(model.na);
  for (std::size_t i = 0; i < model.na; ++i) t_hist[i] = s[i];
  std::vector<std::vector<double>> c_hist(model.nb, std::vector<double>(model.nu, 0.0));
  for (std::size_t j = 0; j < model.nb; ++j) {
    const std::size_t block = std::min(j, ss.nc - 1);  // c(k-1-j); clamp for nb=1
    for (std::size_t m = 0; m < model.nu; ++m) {
      c_hist[j][m] = s[ss.na + block * ss.nu + m];
    }
  }
  std::vector<double> held = c_hist.front();

  std::vector<double> out(steps);
  ArxModel m = model;
  if (!bias_on) m.bias = 0.0;
  for (std::size_t i = 1; i <= steps; ++i) {
    c_hist.insert(c_hist.begin(), held);
    c_hist.pop_back();
    const double t = m.predict(t_hist, c_hist);
    out[i - 1] = t;
    t_hist.insert(t_hist.begin(), t);
    t_hist.pop_back();
  }
  return out;
}

}  // namespace

StabilityReport analyze_closed_loop(const ArxModel& model, const MpcConfig& raw_config) {
  model.validate();
  const MpcConfig config = raw_config.broadcast(model.nu);
  config.validate(model.nu);

  const StateSpace ss{model.na, std::max<std::size_t>(model.nb - 1, 1), model.nu};
  const std::size_t ns = ss.dim();
  const std::size_t nu = model.nu;
  const std::size_t p = config.prediction_horizon;
  const std::size_t mh = config.control_horizon;
  const std::size_t nx = mh * nu;

  // Step-response / prediction matrix — identical construction to the
  // controller's (via a throwaway controller instance to avoid divergence).
  const MpcController probe(model, config);
  const linalg::Matrix& sr = probe.step_response();
  linalg::Matrix g(p, nx);
  for (std::size_t i = 1; i <= p; ++i) {
    for (std::size_t j = 0; j < mh; ++j) {
      if (i <= j) continue;
      for (std::size_t m = 0; m < nu; ++m) g(i - 1, j * nu + m) = sr(i - j - 1, m);
    }
  }
  linalg::Matrix hessian = g.transpose() * g * (2.0 * config.q_weight);
  for (std::size_t j = 0; j < mh; ++j) {
    for (std::size_t m = 0; m < nu; ++m) {
      hessian(j * nu + m, j * nu + m) += 2.0 * config.r_weight[m];
    }
  }
  if (config.terminal == MpcConfig::Terminal::kSoft) {
    const double wt = 2.0 * config.q_weight * config.terminal_weight;
    for (std::size_t r = 0; r < nx; ++r) {
      for (std::size_t c = 0; c < nx; ++c) {
        hessian(r, c) += wt * g(mh - 1, r) * g(mh - 1, c);
      }
    }
  }

  const ReferenceTrajectory reference(config.period_s, config.tref_s);

  // The controller map dc(k) = u(s): affine. Evaluate via the equality-
  // constrained QP exactly as the controller does (inequalities inactive).
  const auto control_move = [&](std::span<const double> s, bool affine_on) {
    const std::vector<double> f = rollout(model, ss, s, p, affine_on);
    const double t_now = s[0];
    std::vector<double> err(p);
    for (std::size_t i = 0; i < p; ++i) {
      // ref(k+i|k) = Ts - e^{-iT/Tref}(Ts - t(k)) = (1-e)Ts + e t(k): its
      // linear part in t(k) is e^{-iT/Tref} t(k); the rest is affine in Ts.
      const double decay =
          std::exp(-static_cast<double>(i + 1) * config.period_s / config.tref_s);
      const double ref =
          affine_on ? reference.at(i + 1, t_now, config.setpoint) : decay * t_now;
      err[i] = f[i] - ref;
    }
    linalg::Vector grad = g.transpose() * std::span<const double>(err);
    for (double& v : grad) v *= 2.0 * config.q_weight;

    linalg::Matrix a_eq;
    linalg::Vector b_eq;
    if (config.terminal == MpcConfig::Terminal::kHard) {
      a_eq = linalg::Matrix(1, nx);
      for (std::size_t c = 0; c < nx; ++c) a_eq(0, c) = g(mh - 1, c);
      const double target = affine_on ? config.setpoint : 0.0;
      b_eq.assign(1, target - f[mh - 1]);
    } else if (config.terminal == MpcConfig::Terminal::kSoft) {
      const double wt = 2.0 * config.q_weight * config.terminal_weight;
      const double target = affine_on ? config.setpoint : 0.0;
      const double residual = f[mh - 1] - target;
      for (std::size_t c = 0; c < nx; ++c) grad[c] += wt * g(mh - 1, c) * residual;
    }
    const linalg::QpResult qp = linalg::solve_equality_qp(hessian, grad, a_eq, b_eq);
    return std::vector<double>(qp.x.begin(), qp.x.begin() + static_cast<std::ptrdiff_t>(nu));
  };

  // K columns by linearity: u(e_i) with the affine parts (bias, Ts) off.
  const std::vector<double> zero(ns, 0.0);
  linalg::Matrix k_gain(nu, ns);
  {
    std::vector<double> e(ns, 0.0);
    for (std::size_t i = 0; i < ns; ++i) {
      std::fill(e.begin(), e.end(), 0.0);
      e[i] = 1.0;
      const std::vector<double> ui = control_move(e, false);
      for (std::size_t m = 0; m < nu; ++m) k_gain(m, i) = ui[m];
    }
  }
  const std::vector<double> u0 = control_move(zero, true);

  // Plant matrices: s(k+1) = A s + B dc + w.
  const auto plant_next = [&](std::span<const double> s, std::span<const double> dc,
                              bool affine_on) {
    // c(k) = c(k-1) + dc.
    std::vector<double> c_now(nu);
    for (std::size_t m = 0; m < nu; ++m) c_now[m] = s[ss.na + m] + dc[m];
    // t(k+1) from the model with c(k) applied.
    std::vector<double> t_hist(model.na);
    for (std::size_t i = 0; i < model.na; ++i) t_hist[i] = s[i];
    std::vector<std::vector<double>> c_hist(model.nb, std::vector<double>(nu, 0.0));
    if (model.nb > 0) c_hist[0] = c_now;
    for (std::size_t j = 1; j < model.nb; ++j) {
      const std::size_t block = std::min(j - 1, ss.nc - 1);
      for (std::size_t m = 0; m < nu; ++m) c_hist[j][m] = s[ss.na + block * ss.nu + m];
    }
    ArxModel m2 = model;
    if (!affine_on) m2.bias = 0.0;
    const double t_next = m2.predict(t_hist, c_hist);

    std::vector<double> s_next(ns, 0.0);
    s_next[0] = t_next;
    for (std::size_t i = 1; i < ss.na; ++i) s_next[i] = s[i - 1];
    for (std::size_t m = 0; m < nu; ++m) s_next[ss.na + m] = c_now[m];
    for (std::size_t blk = 1; blk < ss.nc; ++blk) {
      for (std::size_t m = 0; m < nu; ++m) {
        s_next[ss.na + blk * nu + m] = s[ss.na + (blk - 1) * nu + m];
      }
    }
    return s_next;
  };

  const std::vector<double> zero_u(nu, 0.0);
  linalg::Matrix a_mat(ns, ns);
  {
    std::vector<double> e(ns, 0.0);
    for (std::size_t i = 0; i < ns; ++i) {
      std::fill(e.begin(), e.end(), 0.0);
      e[i] = 1.0;
      const std::vector<double> col = plant_next(e, zero_u, false);
      for (std::size_t r = 0; r < ns; ++r) a_mat(r, i) = col[r];
    }
  }
  linalg::Matrix b_mat(ns, nu);
  {
    std::vector<double> e(nu, 0.0);
    for (std::size_t m = 0; m < nu; ++m) {
      std::fill(e.begin(), e.end(), 0.0);
      e[m] = 1.0;
      const std::vector<double> col = plant_next(zero, e, false);
      for (std::size_t r = 0; r < ns; ++r) b_mat(r, m) = col[r];
    }
  }
  const std::vector<double> w = plant_next(zero, zero_u, true);  // affine drift

  const linalg::Matrix a_cl = a_mat + b_mat * k_gain;

  StabilityReport report;
  report.state_dimension = ns;
  try {
    report.closed_loop_eigenvalues = linalg::eigenvalues(a_cl);
    report.full_spectral_radius = 0.0;
    for (const auto& lambda : report.closed_loop_eigenvalues) {
      report.full_spectral_radius = std::max(report.full_spectral_radius, std::abs(lambda));
    }
  } catch (const std::exception&) {
    // Fall back to the repeated-squaring estimate if QR stalls.
    report.full_spectral_radius = linalg::spectral_radius(a_cl);
  }

  // Steady state: iterate the affine closed loop s(k+1) = A_cl s(k) + d
  // from the origin. Along the equilibrium manifold (I - A_cl) is singular,
  // so a direct solve is unavailable; the output coordinate converges
  // whenever the loop is output-stable because the QP's R-penalty keeps dc
  // inside the output-relevant input span (no drive along fixed modes).
  linalg::Vector drive = b_mat * std::span<const double>(u0);
  for (std::size_t i = 0; i < ns; ++i) drive[i] += w[i];
  const auto iterate = [&](linalg::Vector s, std::size_t steps,
                           std::vector<double>* outputs) {
    for (std::size_t iter = 0; iter < steps; ++iter) {
      linalg::Vector next = a_cl * std::span<const double>(s);
      for (std::size_t i = 0; i < ns; ++i) next[i] += drive[i];
      s = std::move(next);
      if (outputs) outputs->push_back(s[0]);
    }
    return s;
  };

  constexpr std::size_t kSettle = 3000;
  const linalg::Vector s_star = iterate(linalg::Vector(ns, 0.0), kSettle, nullptr);
  report.steady_state_output = s_star[0];
  report.steady_state_error = s_star[0] - config.setpoint;

  // Output-error decay under unit perturbations of every state coordinate.
  // The decay rate is read from the tail ratio |e(K)|/|e(K/2)| ^ (2/K).
  constexpr std::size_t kHorizon = 200;
  double worst_rate = 0.0;
  bool diverged = false;
  for (std::size_t i = 0; i < ns; ++i) {
    linalg::Vector s0 = s_star;
    s0[i] += 1.0;
    std::vector<double> outputs;
    outputs.reserve(kHorizon);
    (void)iterate(std::move(s0), kHorizon, &outputs);
    double peak = 0.0;
    for (const double t : outputs) {
      peak = std::max(peak, std::abs(t - report.steady_state_output));
    }
    const double mid = std::abs(outputs[kHorizon / 2 - 1] - report.steady_state_output);
    const double end = std::abs(outputs[kHorizon - 1] - report.steady_state_output);
    if (!std::isfinite(end) || end > 1e6) {
      diverged = true;
      continue;
    }
    // An error that has collapsed to the numerical floor (<< its peak) has
    // demonstrably decayed; the tail ratio would read ~1 from round-off, so
    // bound its rate from the peak-to-floor drop instead.
    if (end < 1e-9 * std::max(1.0, peak)) {
      if (peak > 0.0 && end > 0.0) {
        worst_rate = std::max(
            worst_rate, std::pow(end / peak, 1.0 / static_cast<double>(kHorizon)));
      }
      continue;
    }
    if (mid > 1e-300) {
      const double rate = std::pow(end / mid, 2.0 / static_cast<double>(kHorizon));
      worst_rate = std::max(worst_rate, rate);
    }
  }
  report.output_decay_rate = diverged ? 2.0 : worst_rate;
  report.stable = !diverged && worst_rate < 1.0 - 1e-9 &&
                  std::isfinite(report.steady_state_output);
  return report;
}

}  // namespace vdc::control
