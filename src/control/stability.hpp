// Nominal closed-loop analysis of the MPC response-time controller.
//
// For the unconstrained (equality-terminal only) controller, the optimal
// move is an affine function of the plant state, dc(k) = K s(k) + u0, so
// the nominal closed loop is linear: s(k+1) = (A + B K) s(k) + const. This
// module builds A, B and K numerically from the ARX model and the MPC
// configuration and reports the closed-loop spectral radius — the paper's
// stability condition (Section IV-B): with the terminal constraint the MPC
// loop is stable iff rho(A + BK) < 1 — plus the steady-state output, which
// equals the set point when the controller has integral-like action.
#pragma once

#include <complex>
#include <vector>

#include "control/arx.hpp"
#include "control/mpc.hpp"

namespace vdc::control {

struct StabilityReport {
  /// Worst-case geometric decay rate of the *output* error under unit state
  /// perturbations of the nominal closed loop (per control period; < 1
  /// means the response time converges back to the set point). With more
  /// VMs than outputs the closed loop has a manifold of equilibria —
  /// allocation redistributions with identical output — so the raw matrix
  /// spectral radius is structurally 1 and says nothing about tracking;
  /// the output decay rate is the quantity that matters.
  double output_decay_rate = 0.0;
  /// Raw spectral radius of the full closed-loop matrix (== 1 whenever the
  /// equilibrium manifold exists; reported for completeness).
  double full_spectral_radius = 0.0;
  bool stable = false;
  /// Output value at the nominal closed-loop fixed point.
  double steady_state_output = 0.0;
  /// steady_state_output - setpoint (0 = offset-free tracking).
  double steady_state_error = 0.0;
  /// Dimension of the analyzed state (na + max(nb-1,1)*nu).
  std::size_t state_dimension = 0;
  /// Exact spectrum of the full closed-loop matrix (Francis QR); the
  /// structural eigenvalue-1 modes are visible here explicitly.
  std::vector<std::complex<double>> closed_loop_eigenvalues;
};

/// Analyzes the nominal (constraint-inactive) closed loop.
/// Throws std::runtime_error when the controller's QP is degenerate for
/// this model (e.g. zero steady-state gain).
[[nodiscard]] StabilityReport analyze_closed_loop(const ArxModel& model,
                                                  const MpcConfig& config);

}  // namespace vdc::control
