// System identification (Section IV-B): fits an ARX response-time model to
// measured (response time, CPU allocation) sequences by least squares —
// "collect data in experiments and then establish a statistical model".
#pragma once

#include <cstddef>
#include <vector>

#include "control/arx.hpp"
#include "util/rng.hpp"

namespace vdc::control {

/// Time-aligned experiment record: outputs[k] is t(k) and inputs[k] is c(k)
/// (the allocation vector applied during period k).
struct SysIdData {
  std::vector<double> outputs;
  std::vector<std::vector<double>> inputs;

  [[nodiscard]] std::size_t length() const noexcept { return outputs.size(); }
  void append(double t, std::vector<double> c);
  /// Throws std::invalid_argument when outputs/inputs disagree in length or
  /// input width varies.
  void validate() const;
};

struct SysIdOptions {
  std::size_t na = 1;
  std::size_t nb = 2;
  /// Ridge regularization; > 0 keeps the fit well-posed under weak
  /// excitation (the usual case for production workloads).
  double ridge_lambda = 1e-6;
};

/// Least-squares ARX fit. Requires data.length() > na+nb+parameters.
[[nodiscard]] ArxModel fit_arx(const SysIdData& data, const SysIdOptions& options = {});

/// Coefficient of determination of one-step-ahead predictions on `data`
/// (1 = perfect; <= 0 = no better than predicting the mean).
[[nodiscard]] double r_squared(const ArxModel& model, const SysIdData& data);

/// Pseudo-random binary/multi-level excitation sequence generator for
/// identification experiments: allocation for each input held for
/// `hold_periods` control periods, drawn uniformly from [lo, hi].
class ExcitationSequence {
 public:
  ExcitationSequence(util::Rng rng, std::size_t inputs, double lo, double hi,
                     std::size_t hold_periods = 3);

  /// Allocation vector for control period k (deterministic in k).
  [[nodiscard]] std::vector<double> at(std::size_t k);

 private:
  util::Rng rng_;
  std::size_t inputs_;
  double lo_;
  double hi_;
  std::size_t hold_;
  std::size_t next_draw_ = 0;
  std::vector<double> current_;
};

}  // namespace vdc::control
