// The exponential reference trajectory of equation (3):
//
//   ref(k+i|k) = Ts - e^{-iT/Tref} (Ts - t(k))
//
// The controller tracks this trajectory instead of jumping straight to the
// set point, so the closed loop behaves like a first-order linear system
// with time constant Tref.
#pragma once

#include <cstddef>
#include <vector>

namespace vdc::control {

class ReferenceTrajectory {
 public:
  /// `period_s` is the control period T; `tref_s` the time constant Tref.
  ReferenceTrajectory(double period_s, double tref_s);

  /// ref(k+i|k) given the current measurement t(k) and set point Ts.
  [[nodiscard]] double at(std::size_t i, double current, double setpoint) const;

  /// The whole horizon [ref(k+1|k) ... ref(k+P|k)].
  [[nodiscard]] std::vector<double> horizon(std::size_t p, double current,
                                            double setpoint) const;

  [[nodiscard]] double period_s() const noexcept { return period_s_; }
  [[nodiscard]] double tref_s() const noexcept { return tref_s_; }

 private:
  double period_s_;
  double tref_s_;
};

}  // namespace vdc::control
