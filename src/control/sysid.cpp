#include "control/sysid.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/qr.hpp"

namespace vdc::control {

void SysIdData::append(double t, std::vector<double> c) {
  outputs.push_back(t);
  inputs.push_back(std::move(c));
}

void SysIdData::validate() const {
  if (outputs.size() != inputs.size()) {
    throw std::invalid_argument("SysIdData: outputs/inputs length mismatch");
  }
  if (!inputs.empty()) {
    const std::size_t nu = inputs.front().size();
    for (const auto& c : inputs) {
      if (c.size() != nu) throw std::invalid_argument("SysIdData: ragged inputs");
    }
  }
}

ArxModel fit_arx(const SysIdData& data, const SysIdOptions& options) {
  data.validate();
  if (data.inputs.empty()) throw std::invalid_argument("fit_arx: empty data");
  const std::size_t nu = data.inputs.front().size();
  const std::size_t na = options.na;
  const std::size_t nb = options.nb;
  if (nb == 0 || nu == 0) throw std::invalid_argument("fit_arx: need inputs");
  const std::size_t lag = std::max(na, nb);
  const std::size_t params = na + nb * nu + 1;
  if (data.length() < lag + params + 2) {
    throw std::invalid_argument("fit_arx: not enough data for the requested orders");
  }

  const std::size_t rows = data.length() - lag;
  linalg::Matrix phi(rows, params);
  linalg::Vector y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t k = lag + r;
    y[r] = data.outputs[k];
    std::size_t col = 0;
    for (std::size_t i = 1; i <= na; ++i) phi(r, col++) = data.outputs[k - i];
    for (std::size_t j = 1; j <= nb; ++j) {
      for (std::size_t m = 0; m < nu; ++m) phi(r, col++) = data.inputs[k - j][m];
    }
    phi(r, col) = 1.0;  // bias
  }

  const linalg::Vector theta =
      options.ridge_lambda > 0.0
          ? linalg::ridge_least_squares(phi, y, options.ridge_lambda)
          : linalg::least_squares(phi, y);

  ArxModel model;
  model.na = na;
  model.nb = nb;
  model.nu = nu;
  model.a.assign(theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(na));
  model.b = linalg::Matrix(nb, nu);
  std::size_t col = na;
  for (std::size_t j = 0; j < nb; ++j) {
    for (std::size_t m = 0; m < nu; ++m) model.b(j, m) = theta[col++];
  }
  model.bias = theta[col];
  model.validate();
  return model;
}

double r_squared(const ArxModel& model, const SysIdData& data) {
  data.validate();
  const std::size_t lag = std::max(model.na, model.nb);
  if (data.length() <= lag + 1) throw std::invalid_argument("r_squared: data too short");

  double mean = 0.0;
  std::size_t count = 0;
  for (std::size_t k = lag; k < data.length(); ++k) {
    mean += data.outputs[k];
    ++count;
  }
  mean /= static_cast<double>(count);

  double ss_res = 0.0;
  double ss_tot = 0.0;
  std::vector<double> t_hist(model.na);
  std::vector<std::vector<double>> c_hist(model.nb);
  for (std::size_t k = lag; k < data.length(); ++k) {
    for (std::size_t i = 0; i < model.na; ++i) t_hist[i] = data.outputs[k - 1 - i];
    for (std::size_t j = 0; j < model.nb; ++j) c_hist[j] = data.inputs[k - 1 - j];
    const double pred = model.predict(t_hist, c_hist);
    const double err = data.outputs[k] - pred;
    ss_res += err * err;
    const double dev = data.outputs[k] - mean;
    ss_tot += dev * dev;
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

ExcitationSequence::ExcitationSequence(util::Rng rng, std::size_t inputs, double lo, double hi,
                                       std::size_t hold_periods)
    : rng_(rng), inputs_(inputs), lo_(lo), hi_(hi), hold_(hold_periods) {
  if (inputs == 0) throw std::invalid_argument("ExcitationSequence: need inputs");
  if (!(hi > lo)) throw std::invalid_argument("ExcitationSequence: hi must exceed lo");
  if (hold_ == 0) hold_ = 1;
  current_.assign(inputs_, lo_);
}

std::vector<double> ExcitationSequence::at(std::size_t k) {
  // Draws are consumed strictly in order; calls must be sequential in k.
  while (next_draw_ <= k) {
    if (next_draw_ % hold_ == 0) {
      for (double& c : current_) c = rng_.uniform(lo_, hi_);
    }
    ++next_draw_;
  }
  return current_;
}

}  // namespace vdc::control
