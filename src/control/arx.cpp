#include "control/arx.hpp"

#include <cmath>
#include <stdexcept>

namespace vdc::control {

double ArxModel::predict(std::span<const double> t_hist,
                         std::span<const std::vector<double>> c_hist) const {
  if (t_hist.size() < na) throw std::invalid_argument("ArxModel::predict: t history too short");
  if (c_hist.size() < nb) throw std::invalid_argument("ArxModel::predict: c history too short");
  double t = bias;
  for (std::size_t i = 0; i < na; ++i) t += a[i] * t_hist[i];
  for (std::size_t j = 0; j < nb; ++j) {
    if (c_hist[j].size() != nu) {
      throw std::invalid_argument("ArxModel::predict: input width mismatch");
    }
    for (std::size_t m = 0; m < nu; ++m) t += b(j, m) * c_hist[j][m];
  }
  return t;
}

bool ArxModel::ar_stable() const {
  if (na == 0) return true;
  // Companion matrix of the AR polynomial z^na - a_1 z^{na-1} - ... - a_na.
  linalg::Matrix companion(na, na);
  for (std::size_t i = 0; i < na; ++i) companion(0, i) = a[i];
  for (std::size_t i = 1; i < na; ++i) companion(i, i - 1) = 1.0;
  return linalg::spectral_radius(companion) < 1.0 - 1e-9;
}

std::vector<double> ArxModel::dc_gain() const {
  double denom = 1.0;
  for (const double ai : a) denom -= ai;
  if (std::abs(denom) < 1e-12) {
    throw std::runtime_error("ArxModel::dc_gain: AR part has a pole at z=1");
  }
  std::vector<double> gain(nu, 0.0);
  for (std::size_t m = 0; m < nu; ++m) {
    double num = 0.0;
    for (std::size_t j = 0; j < nb; ++j) num += b(j, m);
    gain[m] = num / denom;
  }
  return gain;
}

void ArxModel::validate() const {
  if (nu == 0) throw std::invalid_argument("ArxModel: need at least one input");
  if (nb == 0) throw std::invalid_argument("ArxModel: need at least one input lag");
  if (a.size() != na) throw std::invalid_argument("ArxModel: a has wrong length");
  if (b.rows() != nb || b.cols() != nu) {
    throw std::invalid_argument("ArxModel: b has wrong shape");
  }
}

}  // namespace vdc::control
