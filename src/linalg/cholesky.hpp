// Cholesky factorization for the symmetric positive-definite Hessians that
// arise in the MPC quadratic program.
#pragma once

#include "linalg/matrix.hpp"

namespace vdc::linalg {

/// Factors A = L * L^T for symmetric positive-definite A.
/// Throws std::runtime_error if A is not (numerically) SPD.
class CholeskyDecomposition {
 public:
  explicit CholeskyDecomposition(const Matrix& a);

  [[nodiscard]] Vector solve(std::span<const double> b) const;
  [[nodiscard]] const Matrix& lower() const noexcept { return l_; }
  [[nodiscard]] std::size_t size() const noexcept { return l_.rows(); }
  /// log(det A) — numerically safe product of squared diagonal entries.
  [[nodiscard]] double log_determinant() const noexcept;

 private:
  Matrix l_;
};

/// Returns true when `a` is numerically symmetric positive definite.
[[nodiscard]] bool is_spd(const Matrix& a) noexcept;

}  // namespace vdc::linalg
