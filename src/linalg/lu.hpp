// LU factorization with partial pivoting: the general-purpose linear solver
// behind the MPC KKT systems and closed-loop analysis.
#pragma once

#include "linalg/matrix.hpp"

namespace vdc::linalg {

/// Factors P*A = L*U. Throws std::runtime_error on (numerically) singular A.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solves A x = b.
  [[nodiscard]] Vector solve(std::span<const double> b) const;
  /// Solves A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;
  [[nodiscard]] Matrix inverse() const;
  [[nodiscard]] double determinant() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;                      // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int sign_ = 1;                   // permutation parity for determinant
};

/// One-shot convenience: solve A x = b.
[[nodiscard]] Vector lu_solve(Matrix a, std::span<const double> b);

}  // namespace vdc::linalg
