#include "linalg/qr.hpp"

#include <cmath>
#include <stdexcept>

namespace vdc::linalg {

QrDecomposition::QrDecomposition(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (m < n) throw std::invalid_argument("QR: need rows >= cols");
  tau_.assign(n, 0.0);
  const double tol = 1e-12 * std::max(1.0, qr_.max_abs());

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector annihilating column k below row k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm <= tol) {
      rank_deficient_ = true;
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    qr_(k, k) = alpha;
    // Store v (scaled so v[0] = 1) below the diagonal.
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    tau_[k] = -v0 / alpha;  // beta = 2 / (v^T v) with v[0] = 1 normalization

    // Apply the reflector to the remaining columns: A <- (I - beta v v^T) A.
    for (std::size_t c = k + 1; c < n; ++c) {
      double s = qr_(k, c);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, c);
      s *= tau_[k];
      qr_(k, c) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, c) -= s * qr_(i, k);
    }
  }
}

Vector QrDecomposition::qt_apply(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (b.size() != m) throw std::invalid_argument("QR::qt_apply: dimension mismatch");
  Vector y(b.begin(), b.end());
  for (std::size_t k = 0; k < n; ++k) {
    // vdc-lint: float-eq-ok tau is set to exactly 0.0 for degenerate reflectors; the guard skips an identity transform
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vector QrDecomposition::q_apply(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (b.size() != m) throw std::invalid_argument("QR::q_apply: dimension mismatch");
  Vector y(b.begin(), b.end());
  // Q = H_0 H_1 ... H_{n-1}; apply reflectors in reverse order.
  for (std::size_t kk = n; kk-- > 0;) {
    // vdc-lint: float-eq-ok tau is set to exactly 0.0 for degenerate reflectors; the guard skips an identity transform
    if (tau_[kk] == 0.0) continue;
    double s = y[kk];
    for (std::size_t i = kk + 1; i < m; ++i) s += qr_(i, kk) * y[i];
    s *= tau_[kk];
    y[kk] -= s;
    for (std::size_t i = kk + 1; i < m; ++i) y[i] -= s * qr_(i, kk);
  }
  return y;
}

Matrix QrDecomposition::q_full() const {
  const std::size_t m = qr_.rows();
  Matrix q(m, m);
  Vector e(m, 0.0);
  for (std::size_t c = 0; c < m; ++c) {
    std::fill(e.begin(), e.end(), 0.0);
    e[c] = 1.0;
    const Vector col = q_apply(e);
    for (std::size_t r = 0; r < m; ++r) q(r, c) = col[r];
  }
  return q;
}

Vector QrDecomposition::solve(std::span<const double> b) const {
  if (rank_deficient_) throw std::runtime_error("QR::solve: matrix is rank deficient");
  const std::size_t n = qr_.cols();
  Vector y = qt_apply(b);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr_(ii, j) * x[j];
    x[ii] = s / qr_(ii, ii);
  }
  return x;
}

Matrix QrDecomposition::r() const {
  const std::size_t n = qr_.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

Vector least_squares(Matrix a, std::span<const double> b) {
  return QrDecomposition(std::move(a)).solve(b);
}

Vector ridge_least_squares(const Matrix& a, std::span<const double> b, double lambda) {
  if (!(lambda > 0.0)) throw std::invalid_argument("ridge_least_squares: lambda must be > 0");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("ridge_least_squares: dimension mismatch");
  // Solve the stacked system [A; sqrt(lambda) I] x ~= [b; 0].
  Matrix stacked(m + n, n);
  stacked.set_block(0, 0, a);
  const double s = std::sqrt(lambda);
  for (std::size_t i = 0; i < n; ++i) stacked(m + i, i) = s;
  Vector rhs(m + n, 0.0);
  std::copy(b.begin(), b.end(), rhs.begin());
  return least_squares(std::move(stacked), rhs);
}

}  // namespace vdc::linalg
