#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace vdc::linalg {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a) : l_(a.rows(), a.cols()) {
  if (!a.square()) throw std::invalid_argument("Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  const double tol = 1e-13 * std::max(1.0, a.max_abs());
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (d <= tol) throw std::runtime_error("Cholesky: matrix is not positive definite");
    l_(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Vector CholeskyDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument("Cholesky::solve: dimension mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= l_(i, j) * y[j];
    y[i] = s / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * x[j];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

double CholeskyDecomposition::log_determinant() const noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

bool is_spd(const Matrix& a) noexcept {
  if (!a.square()) return false;
  const double tol = 1e-9 * std::max(1.0, a.max_abs());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = r + 1; c < a.cols(); ++c) {
      if (std::abs(a(r, c) - a(c, r)) > tol) return false;
    }
  }
  try {
    const CholeskyDecomposition chol(a);
    (void)chol;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace vdc::linalg
