// Convex quadratic programming for the MPC controller:
//
//   minimize   (1/2) x^T H x + g^T x
//   subject to A x = b          (terminal constraint)
//              lo <= x <= hi    (actuator range)
//
// Equality constraints are eliminated with a QR null-space method; the
// remaining box-constrained problem is solved with Hildreth's dual
// coordinate-ascent procedure, a classic choice for embedded MPC.
#pragma once

#include <limits>
#include <optional>

#include "linalg/matrix.hpp"

namespace vdc::linalg {

struct QpResult {
  Vector x;
  bool converged = false;
  std::size_t iterations = 0;
  /// Objective value (1/2 x'Hx + g'x) at the returned point.
  double objective = 0.0;
};

/// Solves the purely equality-constrained QP via the KKT system
///   [H A^T; A 0] [x; lambda] = [-g; b].
/// Pass an empty `a` (0 rows) for an unconstrained minimization.
/// H must be positive definite on the null space of A.
[[nodiscard]] QpResult solve_equality_qp(const Matrix& h, std::span<const double> g,
                                         const Matrix& a, std::span<const double> b);

/// Hildreth's procedure for  min 1/2 x'Hx + g'x  s.t.  M x <= gamma.
/// H must be positive definite. Converges monotonically for convex QPs;
/// `converged` is false when the iteration cap was reached (the returned
/// point is still primal-feasible up to the active-constraint residual).
[[nodiscard]] QpResult solve_inequality_qp(const Matrix& h, std::span<const double> g,
                                           const Matrix& m, std::span<const double> gamma,
                                           std::size_t max_iterations = 2000,
                                           double tolerance = 1e-9);

/// General convex QP: equality constraints A x = b eliminated via a QR
/// null-space method, general inequalities M x <= gamma handled by
/// Hildreth's procedure on the reduced problem. Pass empty matrices for
/// absent constraint blocks.
[[nodiscard]] QpResult solve_general_qp(const Matrix& h, std::span<const double> g,
                                        const Matrix& a, std::span<const double> b,
                                        const Matrix& m, std::span<const double> gamma,
                                        std::size_t max_iterations = 2000);

/// Full MPC problem: box bounds plus optional equality constraints.
/// Use +/-infinity in hi/lo for unbounded coordinates.
[[nodiscard]] QpResult solve_box_qp(const Matrix& h, std::span<const double> g,
                                    std::span<const double> lo, std::span<const double> hi,
                                    const Matrix& a = Matrix(), std::span<const double> b = {},
                                    std::size_t max_iterations = 2000);

/// Evaluates (1/2) x^T H x + g^T x.
[[nodiscard]] double qp_objective(const Matrix& h, std::span<const double> g,
                                  std::span<const double> x);

}  // namespace vdc::linalg
