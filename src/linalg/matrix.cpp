#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vdc::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(std::span<const double> d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::column(std::span<const double> v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix: index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = data_[r * cols_ + c];
  }
  return t;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) throw std::invalid_argument("Matrix+: shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) throw std::invalid_argument("Matrix-: shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix*: inner dimensions differ");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[r * cols_ + k];
      // vdc-lint: float-eq-ok sparsity skip: exact zero only short-circuits work, any nonzero entry takes the full multiply path
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.data_[r * rhs.cols_ + c] += a * rhs.data_[k * rhs.cols_ + c];
      }
    }
  }
  return out;
}

Vector Matrix::operator*(std::span<const double> x) const {
  if (cols_ != x.size()) throw std::invalid_argument("Matrix*v: dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += data_[r * cols_ + c] * x[c];
    y[r] = s;
  }
  return y;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  if (r0 + b.rows_ > rows_ || c0 + b.cols_ > cols_) {
    throw std::out_of_range("Matrix::set_block: block exceeds bounds");
  }
  for (std::size_t r = 0; r < b.rows_; ++r) {
    for (std::size_t c = 0; c < b.cols_; ++c) {
      data_[(r0 + r) * cols_ + (c0 + c)] = b.data_[r * b.cols_ + c];
    }
  }
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t rows, std::size_t cols) const {
  if (r0 + rows > rows_ || c0 + cols > cols_) {
    throw std::out_of_range("Matrix::block: block exceeds bounds");
  }
  Matrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out(r, c) = data_[(r0 + r) * cols_ + (c0 + c)];
    }
  }
  return out;
}

double Matrix::norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream out;
  out.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    out << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) out << ", ";
      out << data_[r * cols_ + c];
    }
    out << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return out.str();
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> v) noexcept {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

Vector add(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("sub: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(std::span<const double> v, double s) {
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

void axpy(double s, std::span<const double> b, std::span<double> a) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

double spectral_radius(const Matrix& a, std::size_t iterations) {
  if (!a.square()) throw std::invalid_argument("spectral_radius: matrix must be square");
  if (a.rows() == 0) return 0.0;
  // rho(A) = lim_k ||A^k||^{1/k}; repeated squaring with renormalization
  // converges quickly and is robust to complex-conjugate eigenvalue pairs
  // (where plain power iteration on the vector oscillates).
  Matrix p = a;
  double log_scale = 0.0;
  double power = 1.0;  // p approximates A^power / exp(log_scale)
  const std::size_t squarings = std::min<std::size_t>(40, iterations);
  for (std::size_t i = 0; i < squarings; ++i) {
    const double n = p.norm();
    // vdc-lint: float-eq-ok a norm of exactly 0.0 means the iterate is identically zero; the guard avoids log(0)
    if (n == 0.0) return 0.0;
    p *= 1.0 / n;
    log_scale += std::log(n);
    p = p * p;
    log_scale *= 2.0;
    power *= 2.0;
  }
  const double n = p.norm();
  // vdc-lint: float-eq-ok a norm of exactly 0.0 means the iterate is identically zero; the guard avoids log(0)
  if (n == 0.0) return 0.0;
  return std::exp((log_scale + std::log(n)) / power);
}

}  // namespace vdc::linalg
