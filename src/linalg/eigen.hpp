// Dense real eigenvalue solver: Householder reduction to upper Hessenberg
// form followed by the Francis implicit double-shift QR iteration (Golub &
// Van Loan §7.5). Returns the full complex spectrum; used to analyze
// closed-loop dynamics exactly (the power-iteration estimator in
// matrix.hpp only bounds the spectral radius).
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace vdc::linalg {

/// Reduces `a` to upper Hessenberg form via Householder similarity
/// transforms (same spectrum).
[[nodiscard]] Matrix hessenberg(Matrix a);

/// All eigenvalues of a real square matrix, in no particular order.
/// Throws std::invalid_argument for non-square inputs and
/// std::runtime_error if the QR iteration fails to converge.
[[nodiscard]] std::vector<std::complex<double>> eigenvalues(const Matrix& a,
                                                            std::size_t max_iterations = 30);

/// max |lambda| from the exact spectrum.
[[nodiscard]] double exact_spectral_radius(const Matrix& a);

}  // namespace vdc::linalg
