// Householder QR factorization and least squares — the workhorse of system
// identification (ARX fitting) and the MPC's "least squares solver" that the
// paper's controller contains.
#pragma once

#include "linalg/matrix.hpp"

namespace vdc::linalg {

/// Householder QR of an m x n matrix with m >= n.
class QrDecomposition {
 public:
  explicit QrDecomposition(Matrix a);

  /// Least-squares solution of min ||A x - b||_2 (b.size() == m).
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// The upper-triangular factor R (n x n).
  [[nodiscard]] Matrix r() const;
  /// Applies Q^T to a vector of length m.
  [[nodiscard]] Vector qt_apply(std::span<const double> b) const;
  /// Applies Q to a vector of length m.
  [[nodiscard]] Vector q_apply(std::span<const double> b) const;
  /// The full m x m orthogonal factor Q (columns n..m-1 span the orthogonal
  /// complement of range(A) — the null space of A^T).
  [[nodiscard]] Matrix q_full() const;

  [[nodiscard]] std::size_t rows() const noexcept { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return qr_.cols(); }
  /// True when R has a (numerically) zero diagonal entry.
  [[nodiscard]] bool rank_deficient() const noexcept { return rank_deficient_; }

 private:
  Matrix qr_;         // Householder vectors below the diagonal, R above
  Vector tau_;        // Householder coefficients
  bool rank_deficient_ = false;
};

/// One-shot least squares: min ||A x - b||. Throws on rank deficiency.
[[nodiscard]] Vector least_squares(Matrix a, std::span<const double> b);

/// Ridge-regularized least squares: min ||A x - b||^2 + lambda ||x||^2.
/// Always well-posed for lambda > 0; used by system identification when the
/// excitation is weak.
[[nodiscard]] Vector ridge_least_squares(const Matrix& a, std::span<const double> b,
                                         double lambda);

}  // namespace vdc::linalg
