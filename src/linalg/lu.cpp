#include "linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

namespace vdc::linalg {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  if (!lu_.square()) throw std::invalid_argument("LU: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  const double tol = 1e-13 * std::max(1.0, lu_.max_abs());
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| in column k to the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= tol) throw std::runtime_error("LU: matrix is singular to working precision");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / lu_(k, k);
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU::solve: dimension mismatch");
  Vector x(n);
  // Forward substitution with the permuted right-hand side (L has unit diag).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution on U.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n) throw std::invalid_argument("LU::solve: dimension mismatch");
  Matrix x(n, b.cols());
  Vector col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    const Vector xc = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = xc[r];
  }
  return x;
}

Matrix LuDecomposition::inverse() const { return solve(Matrix::identity(lu_.rows())); }

double LuDecomposition::determinant() const noexcept {
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector lu_solve(Matrix a, std::span<const double> b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace vdc::linalg
