#include "linalg/eigen.hpp"

#include <cmath>
#include <stdexcept>

namespace vdc::linalg {

Matrix hessenberg(Matrix a) {
  if (!a.square()) throw std::invalid_argument("hessenberg: matrix must be square");
  const std::size_t n = a.rows();
  if (n < 3) return a;

  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating a(k+2..n-1, k).
    double norm = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) continue;
    const double alpha = a(k + 1, k) >= 0 ? -norm : norm;
    std::vector<double> v(n, 0.0);
    v[k + 1] = a(k + 1, k) - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = a(i, k);
    double vtv = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vtv += v[i] * v[i];
    if (vtv < 1e-300) continue;
    const double beta = 2.0 / vtv;

    // A <- (I - beta v v^T) A
    for (std::size_t c = 0; c < n; ++c) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += v[i] * a(i, c);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(i, c) -= s * v[i];
    }
    // A <- A (I - beta v v^T)
    for (std::size_t r = 0; r < n; ++r) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += a(r, i) * v[i];
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(r, i) -= s * v[i];
    }
  }
  // Clean the (now numerically zero) entries below the subdiagonal.
  for (std::size_t r = 2; r < n; ++r) {
    for (std::size_t c = 0; c + 1 < r; ++c) a(r, c) = 0.0;
  }
  return a;
}

namespace {

/// Eigenvalues of the trailing 2x2 block [[a,b],[c,d]].
void block_eigenvalues(double a, double b, double c, double d,
                       std::vector<std::complex<double>>& out) {
  const double tr = a + d;
  const double det = a * d - b * c;
  const double disc = tr * tr / 4.0 - det;
  if (disc >= 0.0) {
    const double root = std::sqrt(disc);
    out.emplace_back(tr / 2.0 + root, 0.0);
    out.emplace_back(tr / 2.0 - root, 0.0);
  } else {
    const double imag = std::sqrt(-disc);
    out.emplace_back(tr / 2.0, imag);
    out.emplace_back(tr / 2.0, -imag);
  }
}

/// One implicit double-shift (Francis) QR sweep on h(lo..hi, lo..hi).
void francis_sweep(Matrix& h, std::size_t lo, std::size_t hi) {
  const std::size_t n = h.rows();
  // Shift polynomial from the trailing 2x2 of the active block.
  const double s = h(hi - 1, hi - 1) + h(hi, hi);                       // trace
  const double t = h(hi - 1, hi - 1) * h(hi, hi) - h(hi - 1, hi) * h(hi, hi - 1);

  // First column of (H - aI)(H - bI) restricted to the leading 3 entries.
  double x = h(lo, lo) * h(lo, lo) + h(lo, lo + 1) * h(lo + 1, lo) - s * h(lo, lo) + t;
  double y = h(lo + 1, lo) * (h(lo, lo) + h(lo + 1, lo + 1) - s);
  double z = (lo + 2 <= hi) ? h(lo + 2, lo + 1) * h(lo + 1, lo) : 0.0;

  for (std::size_t k = lo; k + 1 <= hi; ++k) {
    // Householder on (x, y, z).
    const double norm = std::sqrt(x * x + y * y + z * z);
    if (norm > 1e-300) {
      const double alpha = x >= 0 ? -norm : norm;
      double v0 = x - alpha;
      double v1 = y;
      double v2 = z;
      const double vtv = v0 * v0 + v1 * v1 + v2 * v2;
      if (vtv > 1e-300) {
        const double beta = 2.0 / vtv;
        const std::size_t rows = (k + 2 <= hi) ? 3 : 2;
        // Apply P = I - beta v v^T from the left to rows k..k+rows-1.
        const std::size_t col_start = (k > lo) ? k - 1 : lo;
        for (std::size_t c = col_start; c < n; ++c) {
          double dot = v0 * h(k, c) + v1 * h(k + 1, c);
          if (rows == 3) dot += v2 * h(k + 2, c);
          dot *= beta;
          h(k, c) -= dot * v0;
          h(k + 1, c) -= dot * v1;
          if (rows == 3) h(k + 2, c) -= dot * v2;
        }
        // ... and from the right to columns k..k+rows-1.
        const std::size_t row_end = std::min(hi, k + 3);
        for (std::size_t r = 0; r <= row_end; ++r) {
          double dot = v0 * h(r, k) + v1 * h(r, k + 1);
          if (rows == 3) dot += v2 * h(r, k + 2);
          dot *= beta;
          h(r, k) -= dot * v0;
          h(r, k + 1) -= dot * v1;
          if (rows == 3) h(r, k + 2) -= dot * v2;
        }
      }
    }
    // Next bulge column.
    if (k + 1 <= hi) {
      x = h(k + 1, k);
      y = (k + 2 <= hi) ? h(k + 2, k) : 0.0;
      z = (k + 3 <= hi) ? h(k + 3, k) : 0.0;
    }
  }
}

}  // namespace

std::vector<std::complex<double>> eigenvalues(const Matrix& a, std::size_t max_iterations) {
  if (!a.square()) throw std::invalid_argument("eigenvalues: matrix must be square");
  const std::size_t n = a.rows();
  std::vector<std::complex<double>> out;
  if (n == 0) return out;
  if (n == 1) {
    out.emplace_back(a(0, 0), 0.0);
    return out;
  }

  Matrix h = hessenberg(a);
  const double scale = std::max(1.0, h.max_abs());
  std::size_t hi = n - 1;
  std::size_t stuck = 0;

  while (true) {
    // Deflate tiny subdiagonals in the active block.
    for (std::size_t i = 1; i <= hi; ++i) {
      const double threshold =
          1e-14 * (std::abs(h(i - 1, i - 1)) + std::abs(h(i, i)) + scale * 1e-3);
      if (std::abs(h(i, i - 1)) < threshold) h(i, i - 1) = 0.0;
    }

    // Peel converged eigenvalues off the bottom.
    if (hi == 0) {
      out.emplace_back(h(0, 0), 0.0);
      break;
    }
    // vdc-lint: float-eq-ok deflation guard: the QR step zeroes converged subdiagonal entries exactly, so == 0.0 marks a deflated boundary
    if (h(hi, hi - 1) == 0.0) {
      out.emplace_back(h(hi, hi), 0.0);
      --hi;
      stuck = 0;
      continue;
    }
    // vdc-lint: float-eq-ok deflation guard: the QR step zeroes converged subdiagonal entries exactly, so == 0.0 marks a deflated boundary
    if (hi == 1 || h(hi - 1, hi - 2) == 0.0) {
      block_eigenvalues(h(hi - 1, hi - 1), h(hi - 1, hi), h(hi, hi - 1), h(hi, hi), out);
      if (hi == 1) break;
      hi -= 2;
      stuck = 0;
      continue;
    }

    // Find the start of the active (unreduced) block ending at hi.
    std::size_t lo = hi - 1;
    // vdc-lint: float-eq-ok deflation guard: an exactly-zero subdiagonal splits the active block; anything nonzero is still coupled
    while (lo > 0 && h(lo, lo - 1) != 0.0) --lo;

    if (++stuck > max_iterations) {
      // Exceptional shift: perturb to break symmetric stagnation, as in
      // LAPACK's ad-hoc shifts.
      h(hi, hi - 1) *= 0.99;
      h(hi - 1, hi - 1) += 1e-8 * scale;
      if (stuck > 3 * max_iterations) {
        throw std::runtime_error("eigenvalues: QR iteration failed to converge");
      }
    }
    francis_sweep(h, lo, hi);
  }

  return out;
}

double exact_spectral_radius(const Matrix& a) {
  double rho = 0.0;
  for (const std::complex<double>& lambda : eigenvalues(a)) {
    rho = std::max(rho, std::abs(lambda));
  }
  return rho;
}

}  // namespace vdc::linalg
