// Small dense linear algebra for the MPC controller and system
// identification. Matrices here are tiny (tens of rows), so the
// implementation favors clarity and numerical robustness over blocking.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace vdc::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-wise construction: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diag(std::span<const double> d);
  /// Column vector (n x 1) from a vector.
  static Matrix column(std::span<const double> v);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> data() noexcept { return data_; }

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator*(double scalar) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scalar);

  /// Matrix-vector product (x.size() must equal cols()).
  [[nodiscard]] Vector operator*(std::span<const double> x) const;

  /// Writes rhs into the block with top-left corner (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& block);
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t rows,
                             std::size_t cols) const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const noexcept;
  /// Max |a_ij| — used in tolerance scaling.
  [[nodiscard]] double max_abs() const noexcept;

  [[nodiscard]] std::string to_string(int precision = 4) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- free vector helpers (Vector is std::vector<double>) -------------------

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double norm2(std::span<const double> v) noexcept;
[[nodiscard]] Vector add(std::span<const double> a, std::span<const double> b);
[[nodiscard]] Vector sub(std::span<const double> a, std::span<const double> b);
[[nodiscard]] Vector scale(std::span<const double> v, double s);
/// a += s * b (axpy).
void axpy(double s, std::span<const double> b, std::span<double> a);

/// Spectral radius via the power iteration with deflation fallback; used by
/// the closed-loop stability analysis. Returns an estimate of max |lambda|.
[[nodiscard]] double spectral_radius(const Matrix& a, std::size_t iterations = 500);

}  // namespace vdc::linalg
