#include "linalg/qp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"

namespace vdc::linalg {

double qp_objective(const Matrix& h, std::span<const double> g, std::span<const double> x) {
  const Vector hx = h * x;
  return 0.5 * dot(x, hx) + dot(g, x);
}

QpResult solve_equality_qp(const Matrix& h, std::span<const double> g, const Matrix& a,
                           std::span<const double> b) {
  const std::size_t n = h.rows();
  if (!h.square() || g.size() != n) throw std::invalid_argument("equality_qp: bad dimensions");
  const std::size_t p = a.rows();
  if (p > 0 && a.cols() != n) throw std::invalid_argument("equality_qp: A width mismatch");
  if (b.size() != p) throw std::invalid_argument("equality_qp: b length mismatch");

  QpResult result;
  if (p == 0) {
    // Unconstrained: H x = -g.
    const CholeskyDecomposition chol(h);
    result.x = chol.solve(scale(g, -1.0));
  } else {
    Matrix kkt(n + p, n + p);
    kkt.set_block(0, 0, h);
    kkt.set_block(0, n, a.transpose());
    kkt.set_block(n, 0, a);
    Vector rhs(n + p, 0.0);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -g[i];
    for (std::size_t i = 0; i < p; ++i) rhs[n + i] = b[i];
    const Vector xl = lu_solve(std::move(kkt), rhs);
    result.x.assign(xl.begin(), xl.begin() + static_cast<std::ptrdiff_t>(n));
  }
  result.converged = true;
  result.iterations = 1;
  result.objective = qp_objective(h, g, result.x);
  return result;
}

QpResult solve_inequality_qp(const Matrix& h, std::span<const double> g, const Matrix& m,
                             std::span<const double> gamma, std::size_t max_iterations,
                             double tolerance) {
  const std::size_t n = h.rows();
  const std::size_t q = m.rows();
  if (!h.square() || g.size() != n) throw std::invalid_argument("inequality_qp: bad dims");
  if (q > 0 && m.cols() != n) throw std::invalid_argument("inequality_qp: M width mismatch");
  if (gamma.size() != q) throw std::invalid_argument("inequality_qp: gamma length mismatch");

  const CholeskyDecomposition chol(h);
  const Vector x0 = chol.solve(scale(g, -1.0));  // unconstrained minimizer

  QpResult result;
  if (q == 0) {
    result.x = x0;
    result.converged = true;
    result.objective = qp_objective(h, g, result.x);
    return result;
  }

  // Check whether the unconstrained minimizer is already feasible.
  const Vector mx0 = m * x0;
  bool feasible = true;
  for (std::size_t i = 0; i < q; ++i) {
    if (mx0[i] > gamma[i] + tolerance) {
      feasible = false;
      break;
    }
  }
  if (feasible) {
    result.x = x0;
    result.converged = true;
    result.iterations = 0;
    result.objective = qp_objective(h, g, result.x);
    return result;
  }

  // Dual problem matrices: P = M H^-1 M^T, k = gamma - M x0 (the dual is
  // min_{lambda>=0} 1/2 lambda'P lambda + k'lambda, solved coordinate-wise;
  // Hildreth's procedure).
  Matrix hinv_mt(n, q);
  {
    Vector col(n);
    for (std::size_t c = 0; c < q; ++c) {
      for (std::size_t r = 0; r < n; ++r) col[r] = m(c, r);
      const Vector sol = chol.solve(col);
      for (std::size_t r = 0; r < n; ++r) hinv_mt(r, c) = sol[r];
    }
  }
  const Matrix p = m * hinv_mt;  // q x q, PSD
  Vector k(q);
  for (std::size_t i = 0; i < q; ++i) k[i] = gamma[i] - mx0[i];

  Vector lambda(q, 0.0);
  std::size_t iter = 0;
  bool converged = false;
  for (; iter < max_iterations; ++iter) {
    double max_change = 0.0;
    for (std::size_t i = 0; i < q; ++i) {
      const double pii = p(i, i);
      if (pii <= 1e-14) continue;  // degenerate row: constraint parallel to others
      double s = k[i];
      for (std::size_t j = 0; j < q; ++j) {
        if (j != i) s += p(i, j) * lambda[j];
      }
      const double updated = std::max(0.0, -s / pii);
      max_change = std::max(max_change, std::abs(updated - lambda[i]));
      lambda[i] = updated;
    }
    if (max_change < tolerance) {
      converged = true;
      ++iter;
      break;
    }
  }

  // Recover the primal point: x = x0 - H^-1 M^T lambda.
  Vector x = x0;
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < q; ++c) s += hinv_mt(r, c) * lambda[c];
    x[r] -= s;
  }

  result.x = std::move(x);
  result.converged = converged;
  result.iterations = iter;
  result.objective = qp_objective(h, g, result.x);
  return result;
}

QpResult solve_general_qp(const Matrix& h, std::span<const double> g, const Matrix& a,
                          std::span<const double> b, const Matrix& m,
                          std::span<const double> gamma, std::size_t max_iterations) {
  const std::size_t n = h.rows();
  if (!h.square() || g.size() != n) throw std::invalid_argument("general_qp: bad dimensions");
  const std::size_t p = a.rows();
  const std::size_t q = m.rows();
  if (q > 0 && m.cols() != n) throw std::invalid_argument("general_qp: M width mismatch");
  if (gamma.size() != q) throw std::invalid_argument("general_qp: gamma length mismatch");

  if (p == 0) {
    return solve_inequality_qp(h, g, m, gamma, max_iterations);
  }
  if (a.cols() != n || b.size() != p) throw std::invalid_argument("general_qp: A/b dimensions");
  if (p >= n) throw std::invalid_argument("general_qp: too many equality constraints");

  // Null-space elimination: QR of A^T gives x = x_p + Z z with A Z = 0.
  const QrDecomposition qr(a.transpose());
  if (qr.rank_deficient()) {
    throw std::runtime_error("general_qp: equality constraints are dependent");
  }

  // Particular solution: A x_p = b with x_p = Q [R^-T b; 0].
  const Matrix r = qr.r();
  Vector y1(p);
  for (std::size_t i = 0; i < p; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= r(j, i) * y1[j];  // R^T forward substitution
    y1[i] = s / r(i, i);
  }
  Vector y_full(n, 0.0);
  std::copy(y1.begin(), y1.end(), y_full.begin());
  const Vector x_particular = qr.q_apply(y_full);

  // Null-space basis: trailing n-p columns of Q.
  const Matrix q_full = qr.q_full();
  const std::size_t nz = n - p;
  Matrix z(n, nz);
  for (std::size_t rr = 0; rr < n; ++rr) {
    for (std::size_t c = 0; c < nz; ++c) z(rr, c) = q_full(rr, p + c);
  }

  // Reduced problem in z: 1/2 z' (Z'HZ) z + (Z'(g + H x_p))' z,
  // subject to (M Z) z <= gamma - M x_p.
  const Matrix hz = z.transpose() * h * z;
  const Vector hxp = h * std::span<const double>(x_particular);
  const Vector tmp = add(g, hxp);
  const Vector gz = z.transpose() * std::span<const double>(tmp);

  Matrix mz;
  Vector gamma_z;
  if (q > 0) {
    mz = m * z;
    const Vector mxp = m * std::span<const double>(x_particular);
    gamma_z = sub(gamma, mxp);
  }
  QpResult reduced = solve_inequality_qp(hz, gz, mz, gamma_z, max_iterations);

  QpResult result;
  result.converged = reduced.converged;
  result.iterations = reduced.iterations;
  const Vector zx = z * std::span<const double>(reduced.x);
  result.x = add(x_particular, zx);
  result.objective = qp_objective(h, g, result.x);
  return result;
}

QpResult solve_box_qp(const Matrix& h, std::span<const double> g, std::span<const double> lo,
                      std::span<const double> hi, const Matrix& a, std::span<const double> b,
                      std::size_t max_iterations) {
  const std::size_t n = h.rows();
  if (lo.size() != n || hi.size() != n) throw std::invalid_argument("box_qp: bound sizes");
  for (std::size_t i = 0; i < n; ++i) {
    if (lo[i] > hi[i]) throw std::invalid_argument("box_qp: lo > hi");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Assemble finite box bounds as inequality rows M x <= gamma.
  std::vector<std::pair<double, std::size_t>> rows;  // (sign, coordinate)
  for (std::size_t i = 0; i < n; ++i) {
    if (hi[i] < kInf) rows.emplace_back(+1.0, i);
    if (lo[i] > -kInf) rows.emplace_back(-1.0, i);
  }
  Matrix m(rows.size(), n);
  Vector gamma(rows.size(), 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto [sign, i] = rows[r];
    m(r, i) = sign;
    gamma[r] = sign > 0 ? hi[i] : -lo[i];
  }

  QpResult result = solve_general_qp(h, g, a, b, m, gamma, max_iterations);
  // Guard against small dual-iteration overshoot: project onto the box.
  // (With equality constraints present this projection can perturb A x = b
  // by at most the same overshoot; the MPC treats that as model error.)
  for (std::size_t i = 0; i < n; ++i) result.x[i] = std::clamp(result.x[i], lo[i], hi[i]);
  result.objective = qp_objective(h, g, result.x);
  return result;
}

}  // namespace vdc::linalg
