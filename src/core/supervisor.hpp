// Supervisory horizontal-scaling layer above the per-application MPC.
//
// The paper's controller has one actuator per tier: the CPU allocation cap
// of its VM. Krzywda et al. show horizontal scaling sits on a different
// power/latency frontier, so this layer adds the replica count as a
// *discrete outer decision* taken once per control period, while the MPC
// inner loop keeps choosing the continuous per-replica allocation exactly
// as before. Split of responsibilities:
//
//   supervisor (this file)   discrete: how many replicas per tier
//   MPC inner loop           continuous: GHz per replica
//
// Scale-out triggers when the SLA is violated while a tier's inner
// actuator is saturated (per-replica demand near c_max) for
// `scale_out_patience` consecutive periods — the continuous actuator has
// nothing left to give, so capacity must come from another replica.
// Scale-in triggers when the application is comfortably under its setpoint
// and the surviving replicas could absorb the tier's total demand with
// headroom, sustained for `scale_in_patience` periods (deliberately longer:
// adding capacity is urgent, removing it is not). One decision per tier
// per period, and while a previous decision is still settling (a replica
// booting or draining) the tier holds — the boot delay makes scale-out a
// committed investment, and acting on a half-applied decision oscillates.
//
// The supervisor is deliberately model-free (thresholds + hysteresis, not
// the ARX model): the discrete decision must stay sane precisely when the
// model is wrong, which is when it matters most.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "app/multi_tier_app.hpp"

namespace vdc::core {

struct SupervisorConfig {
  /// Master switch. Disabled (the default) leaves replica counts at their
  /// configured initial values: the pre-replication behavior, bit for bit.
  bool enabled = false;
  std::size_t min_replicas = 1;
  /// Upper bound per tier (also capped by the tier's own max_replicas).
  std::size_t max_replicas = 4;
  /// A tier counts as saturated when the MPC's per-replica demand exceeds
  /// this fraction of c_max.
  double saturation_fraction = 0.9;
  /// The SLA counts as violated when the measurement exceeds this multiple
  /// of the setpoint.
  double violation_fraction = 1.05;
  /// Consecutive violated+saturated periods before a scale-out.
  std::size_t scale_out_patience = 3;
  /// The measurement must sit below this fraction of the setpoint for a
  /// tier to be scale-in comfortable.
  double comfort_fraction = 0.7;
  /// After removing a replica, the survivors must be able to absorb the
  /// tier's total demand at no more than this fraction of c_max.
  double scale_in_headroom = 0.6;
  /// Consecutive comfortable periods before a scale-in (longer than
  /// scale_out_patience: releasing capacity is never urgent).
  std::size_t scale_in_patience = 10;

  void validate() const;
};

/// One discrete decision: add (+1) or remove (-1) a replica of `tier`.
struct ScaleDecision {
  std::size_t tier = 0;
  int delta = 0;
};

class ScalingSupervisor {
 public:
  ScalingSupervisor(SupervisorConfig config, std::size_t tier_count);

  /// One control period. `measurement_s` is the (filtered) response time,
  /// `setpoint_s` the SLA target, `per_replica_demand_ghz` the MPC's
  /// decision for this period, `c_max_ghz` the per-tier actuator ceiling,
  /// `tiers` the current replica-set status. Pure per-application state —
  /// safe to run in the parallel decide phase.
  [[nodiscard]] std::vector<ScaleDecision> decide(
      double measurement_s, double setpoint_s, std::span<const double> per_replica_demand_ghz,
      std::span<const double> c_max_ghz, std::span<const app::ReplicaSetStatus> tiers);

  [[nodiscard]] const SupervisorConfig& config() const noexcept { return config_; }

 private:
  SupervisorConfig config_;
  std::vector<std::size_t> violate_streak_;
  std::vector<std::size_t> comfort_streak_;
};

}  // namespace vdc::core
