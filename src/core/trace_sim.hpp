// Trace-driven large-scale data-center simulation (Section VI-B): each
// server series of the utilization trace becomes the CPU demand of one VM;
// the servers are drawn from the three simulator CPU classes; the
// consolidation algorithm runs on a long period with DVFS power accounting
// every trace sample in between. This is the engine behind Figure 6.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/power_optimizer.hpp"
#include "datacenter/cluster.hpp"
#include "trace/trace.hpp"

namespace vdc::core {

struct TraceSimConfig {
  /// How many VMs (trace series) to simulate; must not exceed the trace's
  /// server count.
  std::size_t num_vms = 100;
  std::uint64_t seed = 42;
  /// Server inventory (the paper generates 3,000 simulated servers and
  /// gives every data center "enough inactive servers"). The pool is the
  /// same for every VM count, which is what makes per-VM energy grow with
  /// the data-center size: the limited supply of power-efficient machines
  /// is exhausted first.
  std::size_t pool_size = 3000;
  double quad_3ghz_fraction = 0.05;   ///< most efficient class
  double dual_2ghz_fraction = 0.45;   ///< remainder is dual-1.5GHz
  /// Count ACPI-sleep power of unused servers. Default false: the paper
  /// shuts unused servers down ("put unused servers into the sleep mode"
  /// / "shutting down unused servers"), so they draw nothing.
  bool count_sleep_power = false;
  /// Long-time-scale optimizer invocation period (the paper: hours).
  double consolidation_period_s = 4.0 * 3600.0;
  ConsolidationAlgorithm algorithm = ConsolidationAlgorithm::kIpac;
  /// DVFS between optimizer invocations. The paper couples IPAC with the
  /// DVFS-capable response-time controller, while pMapper runs at fixed
  /// frequency — keep that pairing for the Figure-6 comparison and flip it
  /// for the DVFS ablation.
  bool dvfs = true;
  double utilization_target = 0.8;
  consolidate::IpacOptions ipac;
  /// Per-VM peak demand (GHz): trace utilization is scaled by a peak drawn
  /// uniformly from this range (the original servers' speeds are unknown).
  double vm_peak_lo_ghz = 1.0;
  double vm_peak_hi_ghz = 2.5;
  /// Per-VM memory in MB, drawn uniformly from these choices.
  std::vector<double> vm_memory_choices_mb = {512.0, 1024.0, 1536.0, 2048.0};
  /// Optional observer invoked after every trace sample with the live
  /// cluster state (diagnostics, custom metrics, time-series dumps).
  std::function<void(const datacenter::Cluster&, std::size_t sample)> sample_probe;
  /// Energy cost of waking a server from the sleep/off state (boot or
  /// resume burns near-peak power for tens of seconds). Charged per wake
  /// transition.
  double server_wake_energy_wh = 2.0;
  /// On-demand overload mitigation on the short time scale (Section III's
  /// integration with the authors' Co-Con work): when enabled, an
  /// OverloadGuard runs every trace sample and relieves servers that stay
  /// overloaded, instead of waiting for the next optimizer invocation.
  bool on_demand_overload_guard = false;
  /// Proactive consolidation: pack VMs by their *forecast peak* demand
  /// over the next invocation period instead of the instantaneous demand
  /// (see trace/forecast.hpp). kNone reproduces the paper's reactive
  /// behavior.
  enum class Forecast { kNone, kRecentPeak, kDiurnalPeak };
  Forecast forecast = Forecast::kNone;
  double forecast_safety = 1.05;
  /// Physical layout of the server pool, built by the caller against the
  /// `pool_size` server ids (e.g. datacenter::Topology::uniform). Empty —
  /// the default — keeps the simulation flat and its outputs byte-identical
  /// to the pre-topology simulator.
  datacenter::Topology topology;
  /// Budgeted rack-aware consolidation (effective only with a non-empty
  /// topology). When enabled, the cluster also executes migrations with the
  /// rack-aware transfer model (distance-dependent durations) and the run
  /// charges migration energy into the energy totals.
  consolidate::RackAwareOptions rack;
};

struct TraceSimResult {
  double total_energy_wh = 0.0;
  double energy_wh_per_vm = 0.0;
  std::size_t migrations = 0;
  /// Relief migrations performed by the on-demand overload guard (subset
  /// semantics: not included in `migrations`, which counts optimizer moves).
  std::size_t guard_migrations = 0;
  std::size_t optimizer_invocations = 0;
  /// Sleeping->active transitions (each charged server_wake_energy_wh).
  std::size_t server_wakes = 0;
  std::size_t final_active_servers = 0;
  std::size_t peak_active_servers = 0;
  /// Fraction of (server, sample) pairs with demand above capacity — the
  /// SLA-risk proxy in the large-scale simulation.
  double overload_fraction = 0.0;
  /// Energy burned by live migrations (Wh): each migration-log record's
  /// distance-dependent duration times the migration power draw. Counted
  /// into `total_energy_wh` only when `rack.enabled` — flat runs keep the
  /// historical totals bit for bit.
  double migration_energy_wh = 0.0;
  /// Cluster power at every trace sample (W).
  std::vector<double> power_series_w;
};

class TraceDrivenSimulator {
 public:
  explicit TraceDrivenSimulator(const trace::UtilizationTrace& trace);

  /// Runs one full pass over the trace. Deterministic in config.seed.
  [[nodiscard]] TraceSimResult run(const TraceSimConfig& config) const;

 private:
  const trace::UtilizationTrace* trace_;
};

}  // namespace vdc::core
