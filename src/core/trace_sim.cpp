#include "core/trace_sim.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "consolidate/ffd.hpp"
#include "consolidate/working_placement.hpp"
#include "core/overload_guard.hpp"
#include "trace/forecast.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace vdc::core {

TraceDrivenSimulator::TraceDrivenSimulator(const trace::UtilizationTrace& trace)
    : trace_(&trace) {}

TraceSimResult TraceDrivenSimulator::run(const TraceSimConfig& config) const {
  if (config.num_vms == 0 || config.num_vms > trace_->server_count()) {
    throw std::invalid_argument("TraceDrivenSimulator: num_vms out of range");
  }
  if (!(config.consolidation_period_s > 0.0)) {
    throw std::invalid_argument("TraceDrivenSimulator: consolidation period");
  }
  util::Rng rng(config.seed);

  // ---- build the data center ---------------------------------------------
  // Fixed heterogeneous inventory shared by every data-center size ("every
  // data center is assumed to have enough inactive servers"); unused ones
  // are shut down by the consolidators.
  const std::size_t pool = config.pool_size;
  const auto quad_count = static_cast<std::size_t>(config.quad_3ghz_fraction *
                                                   static_cast<double>(pool));
  const auto dual2_count = static_cast<std::size_t>(config.dual_2ghz_fraction *
                                                    static_cast<double>(pool));
  std::vector<int> types;
  types.reserve(pool);
  for (std::size_t s = 0; s < pool; ++s) {
    types.push_back(s < quad_count ? 0 : (s < quad_count + dual2_count ? 1 : 2));
  }
  std::shuffle(types.begin(), types.end(), rng.engine());

  // Rack-aware runs execute migrations with the same distance-dependent
  // transfer model the planner prices them with.
  datacenter::Cluster cluster(config.rack.enabled ? config.rack.cost.transfer
                                                  : datacenter::MigrationModel{});
  for (const int type : types) {
    switch (type) {
      case 0:
        cluster.add_server(datacenter::Server(datacenter::quad_core_3ghz(),
                                              datacenter::power_model_quad_3ghz(), 32768.0));
        break;
      case 1:
        cluster.add_server(datacenter::Server(datacenter::dual_core_2ghz(),
                                              datacenter::power_model_dual_2ghz(), 16384.0));
        break;
      default:
        cluster.add_server(datacenter::Server(datacenter::dual_core_1_5ghz(),
                                              datacenter::power_model_dual_1_5ghz(), 12288.0));
        break;
    }
  }
  if (!config.topology.empty()) cluster.set_topology(config.topology);

  std::vector<double> peak_ghz(config.num_vms);
  for (std::size_t v = 0; v < config.num_vms; ++v) {
    peak_ghz[v] = rng.uniform(config.vm_peak_lo_ghz, config.vm_peak_hi_ghz);
    datacenter::Vm vm;
    vm.name = "vm" + std::to_string(v);
    vm.cpu_demand_ghz = trace_->at(v, 0) * peak_ghz[v];
    vm.memory_mb = config.vm_memory_choices_mb.at(rng.index(config.vm_memory_choices_mb.size()));
    cluster.add_vm(vm);
  }

  // Initial placement: first-fit decreasing onto the most power-efficient
  // servers (identical starting point for every algorithm under test).
  {
    const consolidate::DataCenterSnapshot snap = consolidate::snapshot_of(cluster);
    consolidate::WorkingPlacement wp(snap);
    const consolidate::ConstraintSet constraints =
        consolidate::ConstraintSet::standard(config.utilization_target);
    const std::vector<datacenter::ServerId> order =
        consolidate::servers_by_power_efficiency(snap);
    std::vector<datacenter::VmId> all;
    for (datacenter::VmId v = 0; v < config.num_vms; ++v) all.push_back(v);
    const consolidate::FfdResult ffd =
        consolidate::first_fit_decreasing(wp, order, all, constraints);
    if (!ffd.unplaced.empty()) {
      throw std::runtime_error("TraceDrivenSimulator: initial placement failed");
    }
    consolidate::apply_plan(cluster, wp.plan(), 0.0);
  }

  OptimizerConfig opt_config;
  opt_config.algorithm = config.algorithm;
  opt_config.utilization_target = config.utilization_target;
  opt_config.ipac = config.ipac;
  opt_config.rack = config.rack;
  PowerOptimizer optimizer(opt_config);

  OverloadGuardConfig guard_config;
  guard_config.utilization_target = config.utilization_target;
  guard_config.min_slack = config.ipac.min_slack;
  OverloadGuard guard(guard_config);

  const auto consolidation_horizon = static_cast<std::size_t>(
      std::max(1.0, config.consolidation_period_s / trace_->sample_period_s()));
  std::unique_ptr<trace::DemandForecaster> forecaster;
  switch (config.forecast) {
    case TraceSimConfig::Forecast::kRecentPeak:
      forecaster = std::make_unique<trace::RecentPeakForecaster>(
          config.num_vms, consolidation_horizon, config.forecast_safety);
      break;
    case TraceSimConfig::Forecast::kDiurnalPeak:
      forecaster = std::make_unique<trace::DiurnalPeakForecaster>(
          config.num_vms, static_cast<std::size_t>(86400.0 / trace_->sample_period_s()),
          config.forecast_safety);
      break;
    case TraceSimConfig::Forecast::kNone:
      break;
  }

  // ---- main loop over trace samples ---------------------------------------
  TraceSimResult result;
  const double dt = trace_->sample_period_s();
  const auto consolidation_every = static_cast<std::size_t>(
      std::max(1.0, config.consolidation_period_s / dt));
  std::size_t overloaded_samples = 0;
  std::size_t active_samples = 0;

  for (std::size_t k = 0; k < trace_->sample_count(); ++k) {
    const double now = static_cast<double>(k) * dt;
    for (datacenter::VmId v = 0; v < config.num_vms; ++v) {
      cluster.vm(v).cpu_demand_ghz = trace_->at(v, k) * peak_ghz[v];
    }
    if (forecaster) {
      for (datacenter::VmId v = 0; v < config.num_vms; ++v) {
        forecaster->observe(v, cluster.vm(v).cpu_demand_ghz);
      }
    }
    if (k % consolidation_every == 0) {
      // Proactive mode: present the forecast peak to the optimizer, then
      // restore the true instantaneous demands for power accounting.
      std::vector<double> actual;
      if (forecaster) {
        actual.resize(config.num_vms);
        for (datacenter::VmId v = 0; v < config.num_vms; ++v) {
          actual[v] = cluster.vm(v).cpu_demand_ghz;
          cluster.vm(v).cpu_demand_ghz =
              std::max(actual[v], forecaster->predict_peak(v, consolidation_horizon));
        }
      }
      const OptimizationOutcome outcome = optimizer.optimize(cluster, now);
      if (forecaster) {
        for (datacenter::VmId v = 0; v < config.num_vms; ++v) {
          cluster.vm(v).cpu_demand_ghz = actual[v];
        }
      }
      result.migrations += outcome.migrations;
      ++result.optimizer_invocations;
      if (outcome.unplaced > 0) {
        util::Log(util::LogLevel::kWarn, "trace-sim")
            << outcome.unplaced << " VMs unplaced at t=" << now;
      }
    } else if (config.on_demand_overload_guard) {
      const OverloadGuardReport relief = guard.check(cluster, now);
      result.guard_migrations += relief.migrations;
    }

    double power = cluster.arbitrate_and_power_w(config.dvfs);
    if (!config.count_sleep_power) {
      // Shut-down semantics: sleeping servers draw nothing.
      for (datacenter::ServerId s = 0; s < cluster.server_count(); ++s) {
        if (!cluster.server(s).active()) power -= cluster.server(s).power_model().sleep_w;
      }
    }
    result.power_series_w.push_back(power);
    result.total_energy_wh += power * dt / 3600.0;

    if (config.sample_probe) config.sample_probe(cluster, k);

    const std::size_t active = cluster.active_server_count();
    result.peak_active_servers = std::max(result.peak_active_servers, active);
    active_samples += active;
    for (datacenter::ServerId s = 0; s < cluster.server_count(); ++s) {
      if (cluster.overloaded(s)) ++overloaded_samples;
    }
  }

  result.server_wakes = cluster.wake_count();
  result.total_energy_wh += static_cast<double>(result.server_wakes) * config.server_wake_energy_wh;
  if (config.rack.enabled) {
    for (const datacenter::MigrationRecord& record : cluster.migration_log().records()) {
      result.migration_energy_wh +=
          record.duration_s * config.rack.cost.migration_power_w / 3600.0;
    }
    result.total_energy_wh += result.migration_energy_wh;
  }
  result.energy_wh_per_vm = result.total_energy_wh / static_cast<double>(config.num_vms);
  result.final_active_servers = cluster.active_server_count();
  result.overload_fraction =
      active_samples > 0
          ? static_cast<double>(overloaded_samples) / static_cast<double>(active_samples)
          : 0.0;
  return result;
}

}  // namespace vdc::core
