#include "core/sysid_experiment.hpp"

#include "app/monitor.hpp"
#include "sim/simulation.hpp"

namespace vdc::core {

SysIdExperimentResult identify_app_model(const app::AppConfig& app_config,
                                         const SysIdExperimentConfig& config) {
  sim::Simulation sim;
  app::MultiTierApp app(sim, app_config);
  app::ResponseTimeMonitor monitor(config.quantile);
  app.set_response_callback(
      [&monitor](double, double response_time_s) { monitor.record(response_time_s); });
  app.start();

  // Warm up at mid-range allocations so the recorded data starts near a
  // plausible operating point.
  const std::size_t nu = app.tier_count();
  const double mid = 0.5 * (config.allocation_lo_ghz + config.allocation_hi_ghz);
  app.set_allocations(std::vector<double>(nu, mid));
  sim.run_until(config.warmup_s);
  (void)monitor.harvest();  // drop warmup samples

  control::ExcitationSequence excitation(util::Rng(config.seed), nu,
                                         config.allocation_lo_ghz, config.allocation_hi_ghz,
                                         config.hold_periods);
  std::vector<std::vector<double>> allocations(config.periods + 1);
  for (std::size_t k = 0; k <= config.periods; ++k) allocations[k] = excitation.at(k);

  control::SysIdData data;
  double last_output = config.quantile;  // placeholder until first harvest
  for (std::size_t k = 0; k < config.periods; ++k) {
    app.set_allocations(allocations[k]);
    sim.run_until(config.warmup_s + static_cast<double>(k + 1) * config.control_period_s);
    const auto stats = monitor.harvest();
    if (stats && stats->count > 0) last_output = stats->quantile;
    // Pairing matches the controller's timing: the measurement of window k
    // responds at lag 1 to the allocation applied *during* window k, which
    // is the controller's most recent decision ("c(k-1)" in the model). So
    // inputs[j] must hold the allocation of window j+1.
    data.append(last_output, allocations[k + 1]);
  }

  SysIdExperimentResult result;
  result.model = control::fit_arx(data, config.arx);
  result.r_squared = control::r_squared(result.model, data);
  result.data = std::move(data);
  return result;
}

}  // namespace vdc::core
