#include "core/testbed.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace vdc::core {

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      engine_(config_.shards, config_.shard_threads),
      sim_(engine_.spine()),
      injector_(config_.faults),
      optimizer_(OptimizerConfig{
          .algorithm = config_.optimizer_algorithm,
          .utilization_target = config_.optimizer_utilization_target,
          .ipac = {},
          .migration_backoff_s = config_.optimizer_migration_backoff_s,
          .rack = config_.optimizer_rack,
      }) {
  if (config_.num_apps == 0 || config_.num_servers == 0) {
    throw std::invalid_argument("Testbed: need at least one app and one server");
  }

  // Telemetry sink: every series below lands in this recorder. The sample
  // period follows the control period (every series here records once per
  // control tick).
  config_.telemetry.sample_period_s = config_.control_period_s;
  recorder_ = telemetry::Recorder(config_.telemetry);
  // Sharded mode: the per-app series stream into per-shard recorders so a
  // shard's harvest/record phase never synchronizes with another's; the
  // cluster-level series and annotations stay on the control-plane
  // recorder. take_recorder() reassembles the canonical layout.
  shard_recorders_.reserve(engine_.shard_count());
  for (std::size_t s = 0; s < engine_.shard_count(); ++s) {
    shard_recorders_.push_back(std::make_unique<telemetry::Recorder>(config_.telemetry));
  }

  if (config_.model) {
    model_ = *config_.model;
    model_r2_ = 1.0;  // externally identified; fit quality unknown here
  } else {
    // Identify the shared response-time model on a staging copy of the app.
    const app::AppConfig staging =
        app::default_two_tier_app("staging", config_.seed + 1000, config_.concurrency);
    SysIdExperimentResult sysid = identify_app_model(staging, config_.sysid);
    model_ = std::move(sysid.model);
    model_r2_ = sysid.r_squared;
    util::Log(util::LogLevel::kInfo, "testbed")
        << "identified ARX model, R^2 = " << model_r2_;
  }

  // Cluster: the testbed machines (2 GHz dual-core class).
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    cluster_.add_server(datacenter::Server(datacenter::dual_core_2ghz(),
                                           datacenter::power_model_dual_2ghz(),
                                           /*memory_mb=*/8192.0));
  }
  if (!config_.topology.empty()) cluster_.set_topology(config_.topology);

  // One AppStack (application + monitor + controller) per application.
  AppStackConfig stack;
  stack.mpc = config_.mpc;
  stack.mpc.period_s = config_.control_period_s;
  stack.mpc.setpoint = config_.setpoint_s;
  stack.supervisor = config_.supervisor;
  stack.robust = config_.robust;
  replication_active_ = config_.supervisor.enabled || config_.initial_replicas > 1;

  // Initial placement: one VM per replica, spread round-robin over the
  // servers. With one replica per tier the cursor visits exactly the
  // (i * tiers + j) % num_servers sequence of the pre-replication build.
  std::size_t placement_cursor = 0;
  for (std::size_t i = 0; i < config_.num_apps; ++i) {
    stack.app = app::default_two_tier_app("app" + std::to_string(i + 1),
                                          config_.seed + i, config_.concurrency);
    for (app::TierConfig& tier : stack.app.tiers) {
      tier.initial_replicas = config_.initial_replicas;
      tier.max_replicas = std::max(config_.max_replicas, config_.initial_replicas);
      tier.boot_delay_s = config_.replica_boot_delay_s;
    }
    // The app's entire workload (client population, PS queues, replica
    // boots) lives on its shard's event loop; only control-plane events
    // touch the spine.
    auto app_stack =
        std::make_unique<AppStack>(engine_.shard(shard_of_app(i)), model_, stack);
    app_stack->bind_recorder(&recorder_for_app(i), response_series_name(i),
                             allocation_series_name(i));

    const std::size_t tiers = app_stack->tier_count();
    std::vector<std::vector<datacenter::VmId>> ids(tiers);
    for (std::size_t j = 0; j < tiers; ++j) {
      for (std::size_t r = 0; r < stack.app.tiers[j].initial_replicas; ++r) {
        datacenter::Vm vm;
        vm.name = app_stack->app().name() + (j == 0 ? "-web" : "-db");
        if (r > 0) vm.name += "-r" + std::to_string(r);
        vm.role = j == 0 ? "web" : "db";
        vm.cpu_demand_ghz = stack.initial_allocation_ghz;
        vm.memory_mb = 1024.0;
        const auto server =
            static_cast<datacenter::ServerId>(placement_cursor++ % config_.num_servers);
        ids[j].push_back(cluster_.add_vm(vm, server));
      }
    }
    vm_ids_.push_back(std::move(ids));
    stacks_.push_back(std::move(app_stack));
  }
  for (std::size_t i = 0; i < vm_ids_.size(); ++i) {
    for (std::size_t j = 0; j < vm_ids_[i].size(); ++j) {
      for (std::size_t r = 0; r < vm_ids_[i][j].size(); ++r) {
        const datacenter::VmId vm = vm_ids_[i][j][r];
        if (vm >= vm_slots_.size()) vm_slots_.resize(vm + 1);
        vm_slots_[vm] = VmSlot{i, j, r};
      }
    }
    // Cluster-side bookkeeping around app-side retirement: the backing VM
    // is tombstoned the moment a drained replica goes away.
    stacks_[i]->app().set_replica_retired_callback(
        [this, i](std::size_t tier, std::size_t slot) { on_replica_retired(i, tier, slot); });
  }
  last_work_done_.assign(cluster_.vm_count(), 0.0);
  recorder_.declare_scalar(kPowerSeries);

  // Cluster-level gauges sampled at the end of every control tick.
  probes_.add(kFrequencySeries, [this] {
    double sum = 0.0;
    for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
      sum += cluster_.server(s).frequency_ghz();
    }
    return sum / static_cast<double>(cluster_.server_count());
  });
  probes_.add(kActiveServersSeries,
              [this] { return static_cast<double>(cluster_.active_server_count()); });
  probes_.add(kMigrationsInFlightSeries,
              [this] { return static_cast<double>(migrations_in_flight_); });
  probes_.add(kMigrationsCompletedSeries,
              [this] { return static_cast<double>(completed_migrations_); });
  if (replication_active_) {
    probes_.add(kLiveVmsSeries,
                [this] { return static_cast<double>(cluster_.live_vm_count()); });
  }

  // Chaos wiring: sensor faults route through the app stacks, and the
  // fault gauges exist only when a plan is loaded — a healthy run's
  // telemetry (series names included) is byte-identical to a build that
  // has never heard of fault injection.
  if (injector_.enabled()) {
    // Per-app sensor streams, derived via splitmix64, so drop/spike draws
    // from concurrently advancing shards are race-free and the fault
    // sequence is shard-count-invariant.
    injector_.prepare_sensor_streams(static_cast<std::uint32_t>(config_.num_apps));
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      stacks_[i]->set_fault_injector(&injector_, static_cast<std::uint32_t>(i));
    }
    probes_.add(kFaultsInjectedSeries,
                [this] { return static_cast<double>(injector_.counters().total()); });
    probes_.add(kFailedMigrationsSeries,
                [this] { return static_cast<double>(failed_migrations_); });
  }
}

void Testbed::annotate(const std::string& label) {
  if (injector_.enabled()) recorder_.annotate(sim_.now(), label);
}

void Testbed::apply_tier_allocation(datacenter::VmId vm, double ghz) {
  // A VM retired between decision and grant (scale-in finishing mid-period,
  // or a crash/migration lambda firing late) backs no live replica anymore.
  if (cluster_.vm_retired(vm)) return;
  const VmSlot& slot = vm_slots_.at(vm);
  stacks_[slot.app]->apply_replica_allocation(slot.tier, slot.replica, ghz);
}

datacenter::ServerId Testbed::pick_replica_host() {
  // Least-loaded active server; a fully asleep cluster wakes one box.
  datacenter::ServerId best = datacenter::kNoServer;
  double best_demand_ghz = 0.0;
  for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
    if (!cluster_.server(s).active()) continue;
    const double demand = cluster_.server_cpu_demand_ghz(s);
    if (best == datacenter::kNoServer || demand < best_demand_ghz) {
      best = s;
      best_demand_ghz = demand;
    }
  }
  if (best == datacenter::kNoServer) {
    for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
      if (!cluster_.server(s).failed() && cluster_.wake(s)) return s;
    }
    throw std::logic_error("Testbed: no server available for a new replica");
  }
  return best;
}

datacenter::VmId Testbed::create_replica_vm(std::size_t app, std::size_t tier,
                                            std::size_t slot) {
  datacenter::Vm vm;
  vm.name = stacks_[app]->app().name() + (tier == 0 ? "-web" : "-db") + "-r" +
            std::to_string(slot);
  vm.role = tier == 0 ? "web" : "db";
  // A booting replica consumes its (inherited) allocation from the start.
  vm.cpu_demand_ghz = stacks_[app]->app().replica_allocation(tier, slot);
  vm.memory_mb = 1024.0;
  const datacenter::VmId id = cluster_.add_vm(vm, pick_replica_host());
  if (vm_ids_[app][tier].size() <= slot) {
    vm_ids_[app][tier].resize(slot + 1, datacenter::kNoVm);
  }
  vm_ids_[app][tier][slot] = id;
  if (id >= vm_slots_.size()) vm_slots_.resize(id + 1);
  vm_slots_[id] = VmSlot{app, tier, slot};
  if (id >= last_work_done_.size()) last_work_done_.resize(id + 1, 0.0);
  // Queues are reused across slot generations, so the work counter is
  // cumulative: seed the baseline so only post-creation work is billed.
  last_work_done_[id] = stacks_[app]->app().replica_work_done_gcycles(tier, slot);
  return id;
}

void Testbed::on_replica_retired(std::size_t app, std::size_t tier, std::size_t slot) {
  // A drained replica retires from inside its shard's advance, so two
  // shards can land here at once. The lock serializes the cluster tombstone
  // (`retired_` is a bitfield) and the slot bookkeeping; retirements of
  // distinct VMs commute, so arrival order cannot change the outcome.
  const std::lock_guard<std::mutex> lock(retire_mutex_);
  if (slot >= vm_ids_[app][tier].size()) return;
  const datacenter::VmId vm = vm_ids_[app][tier][slot];
  if (vm == datacenter::kNoVm) return;
  cluster_.retire_vm(vm);
  vm_ids_[app][tier][slot] = datacenter::kNoVm;
}

void Testbed::apply_scale_decisions() {
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    for (const ScaleDecision& decision : stacks_[i]->take_scale_decisions()) {
      if (decision.delta > 0) {
        const std::size_t slot = stacks_[i]->app().scale_out(decision.tier);
        create_replica_vm(i, decision.tier, slot);
      } else if (decision.delta < 0) {
        // Drain-then-retire; the VM tombstone lands via the retire callback.
        stacks_[i]->app().scale_in(decision.tier);
      }
    }
  }
}

std::uint64_t Testbed::scale_out_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& stack : stacks_) total += stack->app().scale_out_count();
  return total;
}

std::uint64_t Testbed::scale_in_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& stack : stacks_) total += stack->app().scale_in_count();
  return total;
}

void Testbed::for_each_shard_apps(const std::function<void(std::size_t)>& body) {
  const std::size_t apps = stacks_.size();
  const std::size_t shards = engine_.shard_count();
  if (shards == 0) {
    for (std::size_t i = 0; i < apps; ++i) body(i);
    return;
  }
  util::parallel_for(
      shards,
      [&](std::size_t s) {
        // Inverse of the block partition shard_of_app(i) = i*shards/apps:
        // shard s owns apps [ceil(s*apps/shards), ceil((s+1)*apps/shards)).
        const std::size_t lo = (s * apps + shards - 1) / shards;
        const std::size_t hi = ((s + 1) * apps + shards - 1) / shards;
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      config_.shard_threads);
}

telemetry::Recorder Testbed::take_recorder() {
  if (shard_recorders_.empty()) return std::move(recorder_);
  // Canonical merge order: shard recorders by shard index (their apps are a
  // contiguous ascending range each), then the control-plane recorder —
  // reproducing exactly the series creation order of a legacy-mode run
  // (app0/p90, app0/alloc, ..., cluster/*, fault/*).
  telemetry::Recorder merged(recorder_.config());
  for (std::unique_ptr<telemetry::Recorder>& rec : shard_recorders_) {
    merged.absorb(std::move(*rec));
  }
  merged.absorb(std::move(recorder_));
  return merged;
}

void Testbed::set_setpoint(std::size_t app, double setpoint_s) {
  stacks_.at(app)->set_setpoint(setpoint_s);
}

void Testbed::set_concurrency(std::size_t app, std::size_t concurrency) {
  stacks_.at(app)->set_concurrency(concurrency);
}

const std::vector<double>& Testbed::response_series(std::size_t app) const {
  return recorder_for_app(app).values(response_series_name(app));
}

const std::vector<double>& Testbed::power_series() const {
  return recorder_.values(kPowerSeries);
}

const std::vector<std::vector<double>>& Testbed::allocation_series(std::size_t app) const {
  return recorder_for_app(app).rows(allocation_series_name(app));
}

app::PeriodStats Testbed::lifetime_stats(std::size_t app) const {
  return stacks_.at(app)->monitor().lifetime();
}

util::RunningStats Testbed::response_stats_after(std::size_t app, double from_s) const {
  util::RunningStats stats;
  const std::vector<double>& series = response_series(app);
  const auto first = static_cast<std::size_t>(from_s / config_.control_period_s);
  for (std::size_t k = first; k < series.size(); ++k) stats.add(series[k]);
  return stats;
}

void Testbed::run_until(double until_s) {
  if (!loop_started_) {
    loop_started_ = true;
    for (auto& stack : stacks_) stack->start();
    sim_.schedule(config_.control_period_s, [this] { control_tick(); });
    if (config_.enable_optimizer) {
      sim_.schedule(config_.optimizer_period_s, [this] { optimizer_tick(); });
    }
    // Scheduled crashes: fail at window start, recover at window end.
    for (const fault::FaultWindow& w : injector_.crash_windows()) {
      const auto server = static_cast<datacenter::ServerId>(w.target);
      sim_.schedule_window(
          w.start_s, w.end_s, [this, server] { crash_server(server); },
          [this, server] { repair_crashed_server(server); });
    }
    // Correlated rack failures: every member server goes down and comes
    // back together (shared switch / PDU loss).
    for (const fault::FaultWindow& w : injector_.rack_failure_windows()) {
      const auto rack = static_cast<datacenter::RackId>(w.target);
      sim_.schedule_window(
          w.start_s, w.end_s, [this, rack] { crash_rack(rack); },
          [this, rack] { repair_rack(rack); });
    }
  }
  engine_.run_until(until_s);
}

void Testbed::crash_server(datacenter::ServerId id) {
  injector_.note_crash(sim_.now(), id);
  annotate("server-crash srv" + std::to_string(id));
  // Eviction: the hosted VMs lose their CPU on the spot; they get nothing
  // until the optimizer re-places them.
  const std::vector<datacenter::VmId> evicted = cluster_.fail_server(id);
  for (const datacenter::VmId vm : evicted) apply_tier_allocation(vm, 0.0);
  // Emergency re-plan against the realized placement — the evicted VMs are
  // homeless and every control period they wait costs SLA.
  if (config_.enable_optimizer && !evicted.empty() && migrations_in_flight_ == 0) {
    run_optimizer_pass();
  }
}

void Testbed::repair_crashed_server(datacenter::ServerId id) {
  cluster_.repair_server(id);
  annotate("server-repair srv" + std::to_string(id));
}

void Testbed::crash_rack(datacenter::RackId id) {
  injector_.note_rack_failure(sim_.now(), id);
  annotate("rack-failure rack" + std::to_string(id));
  const std::vector<datacenter::VmId> evicted = cluster_.fail_rack(id);
  for (const datacenter::VmId vm : evicted) apply_tier_allocation(vm, 0.0);
  // Same emergency policy as a single-server crash: the re-plan sees every
  // member marked failed, so the constraints steer re-placement to other
  // racks automatically.
  if (config_.enable_optimizer && !evicted.empty() && migrations_in_flight_ == 0) {
    run_optimizer_pass();
  }
}

void Testbed::repair_rack(datacenter::RackId id) {
  cluster_.repair_rack(id);
  annotate("rack-repair rack" + std::to_string(id));
}

void Testbed::optimizer_tick() {
  sim_.schedule(sim_.now() + config_.optimizer_period_s, [this] { optimizer_tick(); });
  // Re-planning while migrations are in flight would race the mapping.
  if (migrations_in_flight_ > 0) return;
  ++optimizer_invocations_;
  run_optimizer_pass();
}

void Testbed::run_optimizer_pass() {
  const consolidate::PlacementPlan plan = optimizer_.plan(cluster_, sim_.now());
  for (const consolidate::Move& move : plan.moves) {
    if (move.from == datacenter::kNoServer) {
      start_restart(move.vm, move.to);  // crash-evicted VM: no source to copy from
    } else {
      start_migration(move.vm, move.to);
    }
  }
  if (plan.moves.empty()) cluster_.sleep_idle_servers();
}

void Testbed::fail_migration(datacenter::VmId vm, const std::string& label) {
  --migrations_in_flight_;
  ++failed_migrations_;
  optimizer_.note_migration_failure(vm, sim_.now());
  annotate(label);
  if (migrations_in_flight_ == 0) cluster_.sleep_idle_servers();
}

void Testbed::start_migration(datacenter::VmId vm, datacenter::ServerId to) {
  // Pre-copy live migration: the VM keeps serving on the source while its
  // memory image crosses the network, stalls for the stop-and-copy
  // downtime, then resumes on the destination.
  const datacenter::MigrationModel& model = cluster_.migration_model();
  const datacenter::ServerId from = cluster_.host_of(vm);
  // Waking the destination can fail — injected refusal, or the box is
  // outright crashed. The migration never starts; the VM stays on its
  // source and the optimizer backs off before retrying.
  if (!cluster_.server(to).active()) {
    if (injector_.wake_fails(sim_.now(), to) || !cluster_.wake(to)) {
      ++failed_migrations_;
      optimizer_.note_migration_failure(vm, sim_.now());
      annotate("wake-failure srv" + std::to_string(to) + " vm" + std::to_string(vm) +
               " stays on srv" + std::to_string(from));
      return;
    }
  }
  const double copy_s =
      std::max(0.0, model.duration_s(cluster_.vm(vm).memory_mb) - model.downtime_s) *
      injector_.migration_slowdown(sim_.now(), from);
  ++migrations_in_flight_;
  sim_.schedule_after(copy_s, [this, vm, to] {
    // End of copy: this is where a live migration can die. The source may
    // have crashed under the copy (the VM is gone — nothing to hand over),
    // the destination may have failed, or the hypervisor aborts and rolls
    // back (the VM keeps running on the source as if nothing happened).
    const datacenter::ServerId source = cluster_.host_of(vm);
    if (source == datacenter::kNoServer) {
      fail_migration(vm, "migration-lost vm" + std::to_string(vm) + " (source crashed)");
      return;
    }
    if (cluster_.server(to).failed()) {
      fail_migration(vm, "migration-abort vm" + std::to_string(vm) + " (target srv" +
                             std::to_string(to) + " crashed)");
      return;
    }
    if (injector_.migration_aborts(sim_.now(), source)) {
      fail_migration(vm, "migration-abort vm" + std::to_string(vm) + " on srv" +
                             std::to_string(source));
      return;
    }
    // Stop-and-copy: the tier stops processing for the downtime window.
    apply_tier_allocation(vm, 0.0);
    sim_.schedule_after(cluster_.migration_model().downtime_s, [this, vm, to] {
      if (cluster_.host_of(vm) == datacenter::kNoServer || cluster_.server(to).failed()) {
        // A crash landed inside the downtime window; the hand-over target
        // (or the VM itself) is gone.
        fail_migration(vm, "migration-lost vm" + std::to_string(vm) + " (crash in downtime)");
        return;
      }
      cluster_.migrate(vm, to, sim_.now());
      // Resume with the controller's current demand; the next control tick
      // re-arbitrates the destination server.
      apply_tier_allocation(vm, cluster_.vm(vm).cpu_demand_ghz);
      --migrations_in_flight_;
      ++completed_migrations_;
      if (migrations_in_flight_ == 0) cluster_.sleep_idle_servers();
    });
  });
}

void Testbed::start_restart(datacenter::VmId vm, datacenter::ServerId to) {
  // A crash-evicted VM has no source to pre-copy from: it cold-restarts on
  // the target after one stop-and-copy downtime.
  if (!cluster_.server(to).active()) {
    if (injector_.wake_fails(sim_.now(), to) || !cluster_.wake(to)) {
      annotate("wake-failure srv" + std::to_string(to) + " vm" + std::to_string(vm) +
               " still homeless");
      return;  // the optimizer retries at its next tick
    }
  }
  ++migrations_in_flight_;
  sim_.schedule_after(cluster_.migration_model().downtime_s, [this, vm, to] {
    if (cluster_.server(to).failed() || cluster_.host_of(vm) != datacenter::kNoServer) {
      --migrations_in_flight_;
      if (migrations_in_flight_ == 0) cluster_.sleep_idle_servers();
      return;
    }
    cluster_.place(vm, to);
    apply_tier_allocation(vm, cluster_.vm(vm).cpu_demand_ghz);
    --migrations_in_flight_;
    ++restarts_;
    annotate("vm-restart vm" + std::to_string(vm) + " on srv" + std::to_string(to));
    if (migrations_in_flight_ == 0) cluster_.sleep_idle_servers();
  });
}

void Testbed::record_power(double now) {
  // Power over the elapsed interval: actual work done / capacity.
  const double interval = now - last_power_time_s_;
  double total_power = 0.0;
  std::vector<double> server_work(cluster_.server_count(), 0.0);
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    for (std::size_t j = 0; j < stacks_[i]->tier_count(); ++j) {
      const std::vector<datacenter::VmId>& slots = vm_ids_[i][j];
      for (std::size_t r = 0; r < slots.size(); ++r) {
        const datacenter::VmId vm = slots[r];
        if (vm == datacenter::kNoVm) continue;
        const double done = stacks_[i]->app().replica_work_done_gcycles(j, r);
        const double delta = done - last_work_done_[vm];
        last_work_done_[vm] = done;
        // A crash-evicted VM has no host; its (zero-allocation) replica does
        // no work, and whatever it finished before the crash burned on no
        // server.
        const datacenter::ServerId host = cluster_.host_of(vm);
        if (host != datacenter::kNoServer) server_work[host] += delta;
      }
    }
  }
  for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
    const datacenter::Server& server = cluster_.server(s);
    const double capacity = server.capacity_ghz();
    const double utilization =
        (capacity > 0.0 && interval > 0.0) ? server_work[s] / (capacity * interval) : 0.0;
    total_power += server.power_w(utilization);
  }
  // Shared infrastructure draw: a rack's switch/fans burn while any member
  // is awake, a pod's fabric while any member rack is lit. Flat testbeds
  // (empty topology) skip both loops and record the historical series.
  const datacenter::Topology& topo = cluster_.topology();
  if (!topo.empty()) {
    for (datacenter::RackId r = 0; r < topo.rack_count(); ++r) {
      for (const datacenter::ServerId member : topo.servers_in(r)) {
        if (member < cluster_.server_count() && cluster_.server(member).active()) {
          total_power += topo.rack_shared_power_w(r);
          break;
        }
      }
    }
    for (datacenter::PodId p = 0; p < topo.pod_count(); ++p) {
      bool lit = false;
      for (const datacenter::RackId r : topo.racks_in(p)) {
        for (const datacenter::ServerId member : topo.servers_in(r)) {
          if (member < cluster_.server_count() && cluster_.server(member).active()) {
            lit = true;
            break;
          }
        }
        if (lit) break;
      }
      if (lit) total_power += topo.pod_shared_power_w(p);
    }
  }
  if (interval > 0.0) recorder_.append_at(kPowerSeries, now, total_power);
  last_power_time_s_ = now;
}

void Testbed::control_tick() {
  const double now = sim_.now();
  record_power(now);

  // ---- feedback control: demands per application --------------------------
  // Phases (see AppStack::harvest_tick): harvest (monitor + per-app fault
  // stream + the app's recorder), parallel MPC decide (each solve touches
  // only its own controller), then record/push-down. In legacy mode harvest
  // and record are serial (one shared recorder); in sharded mode both run
  // per shard in parallel — each shard appends only to its own recorder and
  // writes only its own apps' VM demands, and the per-recorder append order
  // (app index within the shard) matches the serial order, so results are
  // bit-identical either way.
  std::vector<std::optional<app::PeriodStats>> harvested(stacks_.size());
  for_each_shard_apps([&](std::size_t i) { harvested[i] = stacks_[i]->harvest_tick(); });
  std::vector<std::vector<double>> decided(stacks_.size());
  if (stacks_.size() >= config_.parallel_control_min_apps) {
    util::parallel_for(stacks_.size(), [&](std::size_t i) {
      decided[i] = stacks_[i]->decide_tick(harvested[i]);
    });
  } else {
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      decided[i] = stacks_[i]->decide_tick(harvested[i]);
    }
  }
  for_each_shard_apps([&](std::size_t i) {
    stacks_[i]->record_decision(decided[i]);
    // Per-replica decision: the MPC allocates per replica, so every live VM
    // backing tier j demands the same decided[i][j]. Writes from different
    // shards land on disjoint VM records.
    for (std::size_t j = 0; j < decided[i].size(); ++j) {
      for (const datacenter::VmId vm : vm_ids_[i][j]) {
        if (vm != datacenter::kNoVm) cluster_.vm(vm).cpu_demand_ghz = decided[i][j];
      }
    }
  });

  // ---- supervisory replica decisions (serial phase) ------------------------
  // Applied before arbitration so a freshly booted-out replica consumes its
  // allocation from this very period (the VM is up and billed immediately).
  apply_scale_decisions();

  // ---- server-level arbitration: DVFS + grants -----------------------------
  std::vector<double> demands;
  for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
    const auto hosted = cluster_.vms_on(s);
    demands.clear();
    for (const datacenter::VmId vm : hosted) {
      demands.push_back(cluster_.vm(vm).cpu_demand_ghz);
    }
    datacenter::CpuResourceArbitrator arbitrator(1.1);
    datacenter::ArbitrationResult arb = arbitrator.arbitrate(cluster_.server(s).cpu(), demands);
    if (!config_.dvfs) {
      arb.frequency_ghz = cluster_.server(s).cpu().max_freq_ghz;
    }
    // Actuator fault: DVFS stuck at a fixed step. The arbitrator's grants
    // assumed its chosen frequency, so rescale them to fit the pinned
    // capacity — the hypervisor cannot grant cycles the CPU won't deliver.
    const std::optional<double> pin = injector_.dvfs_pin_ghz(now, static_cast<std::uint32_t>(s));
    if (pin) arb.frequency_ghz = *pin;
    cluster_.server(s).set_frequency(arb.frequency_ghz);
    if (pin) {
      const double cap = cluster_.server(s).capacity_ghz();
      double granted = 0.0;
      for (const double g : arb.allocations_ghz) granted += g;
      if (granted > cap && granted > 0.0) {
        const double scale = cap / granted;
        for (double& g : arb.allocations_ghz) g *= scale;
      }
    }
    // Apply the granted allocations to the tier queues.
    for (std::size_t h = 0; h < hosted.size(); ++h) {
      apply_tier_allocation(hosted[h], arb.allocations_ghz[h]);
    }
  }

  probes_.sample(recorder_, now);
  sim_.schedule(now + config_.control_period_s, [this] { control_tick(); });
}

}  // namespace vdc::core
