#include "core/testbed.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/log.hpp"

namespace vdc::core {

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
  if (config_.num_apps == 0 || config_.num_servers == 0) {
    throw std::invalid_argument("Testbed: need at least one app and one server");
  }

  if (config_.model) {
    model_ = *config_.model;
    model_r2_ = 1.0;  // externally identified; fit quality unknown here
  } else {
    // Identify the shared response-time model on a staging copy of the app.
    const app::AppConfig staging =
        app::default_two_tier_app("staging", config_.seed + 1000, config_.concurrency);
    SysIdExperimentResult sysid = identify_app_model(staging, config_.sysid);
    model_ = std::move(sysid.model);
    model_r2_ = sysid.r_squared;
    util::Log(util::LogLevel::kInfo, "testbed")
        << "identified ARX model, R^2 = " << model_r2_;
  }

  // Cluster: the testbed machines (2 GHz dual-core class).
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    cluster_.add_server(datacenter::Server(datacenter::dual_core_2ghz(),
                                           datacenter::power_model_dual_2ghz(),
                                           /*memory_mb=*/8192.0));
  }

  // One AppStack (application + monitor + controller) per application.
  AppStackConfig stack;
  stack.mpc = config_.mpc;
  stack.mpc.period_s = config_.control_period_s;
  stack.mpc.setpoint = config_.setpoint_s;

  for (std::size_t i = 0; i < config_.num_apps; ++i) {
    stack.app = app::default_two_tier_app("app" + std::to_string(i + 1),
                                          config_.seed + i, config_.concurrency);
    auto app_stack = std::make_unique<AppStack>(sim_, model_, stack);
    app_stack->bind_recorder(&recorder_, response_series_name(i),
                             allocation_series_name(i));

    // One VM per tier, spread round-robin over the servers.
    const std::size_t tiers = app_stack->tier_count();
    std::vector<datacenter::VmId> ids;
    for (std::size_t j = 0; j < tiers; ++j) {
      datacenter::Vm vm;
      vm.name = app_stack->app().name() + (j == 0 ? "-web" : "-db");
      vm.role = j == 0 ? "web" : "db";
      vm.cpu_demand_ghz = stack.initial_allocation_ghz;
      vm.memory_mb = 1024.0;
      const auto server = static_cast<datacenter::ServerId>(
          (i * tiers + j) % config_.num_servers);
      ids.push_back(cluster_.add_vm(vm, server));
    }
    vm_ids_.push_back(std::move(ids));
    stacks_.push_back(std::move(app_stack));
  }
  last_work_done_.assign(config_.num_apps * 2, 0.0);
  recorder_.declare_scalar(kPowerSeries);

  // Cluster-level gauges sampled at the end of every control tick.
  probes_.add(kFrequencySeries, [this] {
    double sum = 0.0;
    for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
      sum += cluster_.server(s).frequency_ghz();
    }
    return sum / static_cast<double>(cluster_.server_count());
  });
  probes_.add(kActiveServersSeries,
              [this] { return static_cast<double>(cluster_.active_server_count()); });
  probes_.add(kMigrationsInFlightSeries,
              [this] { return static_cast<double>(migrations_in_flight_); });
  probes_.add(kMigrationsCompletedSeries,
              [this] { return static_cast<double>(completed_migrations_); });
}

void Testbed::set_setpoint(std::size_t app, double setpoint_s) {
  stacks_.at(app)->set_setpoint(setpoint_s);
}

void Testbed::set_concurrency(std::size_t app, std::size_t concurrency) {
  stacks_.at(app)->set_concurrency(concurrency);
}

const std::vector<double>& Testbed::response_series(std::size_t app) const {
  return recorder_.values(response_series_name(app));
}

const std::vector<double>& Testbed::power_series() const {
  return recorder_.values(kPowerSeries);
}

const std::vector<std::vector<double>>& Testbed::allocation_series(std::size_t app) const {
  return recorder_.rows(allocation_series_name(app));
}

app::PeriodStats Testbed::lifetime_stats(std::size_t app) const {
  return stacks_.at(app)->monitor().lifetime();
}

util::RunningStats Testbed::response_stats_after(std::size_t app, double from_s) const {
  util::RunningStats stats;
  const std::vector<double>& series = response_series(app);
  const auto first = static_cast<std::size_t>(from_s / config_.control_period_s);
  for (std::size_t k = first; k < series.size(); ++k) stats.add(series[k]);
  return stats;
}

void Testbed::run_until(double until_s) {
  if (!loop_started_) {
    loop_started_ = true;
    for (auto& stack : stacks_) stack->start();
    sim_.schedule(config_.control_period_s, [this] { control_tick(); });
    if (config_.enable_optimizer) {
      sim_.schedule(config_.optimizer_period_s, [this] { optimizer_tick(); });
    }
  }
  sim_.run_until(until_s);
}

void Testbed::optimizer_tick() {
  sim_.schedule(sim_.now() + config_.optimizer_period_s, [this] { optimizer_tick(); });
  // Re-planning while migrations are in flight would race the mapping.
  if (migrations_in_flight_ > 0) return;
  ++optimizer_invocations_;

  const consolidate::DataCenterSnapshot snapshot = consolidate::snapshot_of(cluster_);
  const consolidate::ConstraintSet constraints =
      consolidate::ConstraintSet::standard(config_.optimizer_utilization_target);
  consolidate::PlacementPlan plan;
  switch (config_.optimizer_algorithm) {
    case ConsolidationAlgorithm::kIpac: {
      plan = consolidate::ipac(snapshot, constraints).plan;
      break;
    }
    case ConsolidationAlgorithm::kPMapper: {
      plan = consolidate::pmapper(snapshot, constraints).plan;
      break;
    }
    case ConsolidationAlgorithm::kNone:
      break;
  }
  for (const consolidate::Move& move : plan.moves) start_migration(move.vm, move.to);
  if (plan.moves.empty()) cluster_.sleep_idle_servers();
}

void Testbed::start_migration(datacenter::VmId vm, datacenter::ServerId to) {
  // Pre-copy live migration: the VM keeps serving on the source while its
  // memory image crosses the network, stalls for the stop-and-copy
  // downtime, then resumes on the destination.
  const datacenter::MigrationModel& model = cluster_.migration_model();
  const double copy_s =
      std::max(0.0, model.duration_s(cluster_.vm(vm).memory_mb) - model.downtime_s);
  ++migrations_in_flight_;
  cluster_.wake(to);
  sim_.schedule_after(copy_s, [this, vm, to] {
    // Stop-and-copy: the tier stops processing for the downtime window.
    for (std::size_t i = 0; i < vm_ids_.size(); ++i) {
      for (std::size_t j = 0; j < vm_ids_[i].size(); ++j) {
        if (vm_ids_[i][j] == vm) stacks_[i]->apply_allocation(j, 0.0);
      }
    }
    sim_.schedule_after(cluster_.migration_model().downtime_s, [this, vm, to] {
      cluster_.migrate(vm, to, sim_.now());
      // Resume with the controller's current demand; the next control tick
      // re-arbitrates the destination server.
      for (std::size_t i = 0; i < vm_ids_.size(); ++i) {
        for (std::size_t j = 0; j < vm_ids_[i].size(); ++j) {
          if (vm_ids_[i][j] == vm) {
            stacks_[i]->apply_allocation(j, cluster_.vm(vm).cpu_demand_ghz);
          }
        }
      }
      --migrations_in_flight_;
      ++completed_migrations_;
      if (migrations_in_flight_ == 0) cluster_.sleep_idle_servers();
    });
  });
}

void Testbed::record_power(double now) {
  // Power over the elapsed interval: actual work done / capacity.
  const double interval = now - last_power_time_;
  double total_power = 0.0;
  std::size_t vm_index = 0;
  std::vector<double> server_work(cluster_.server_count(), 0.0);
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    for (std::size_t j = 0; j < stacks_[i]->tier_count(); ++j, ++vm_index) {
      const double done = stacks_[i]->app().tier_work_done(j);
      const double delta = done - last_work_done_[vm_index];
      last_work_done_[vm_index] = done;
      server_work[cluster_.host_of(vm_ids_[i][j])] += delta;
    }
  }
  for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
    const datacenter::Server& server = cluster_.server(s);
    const double capacity = server.capacity_ghz();
    const double utilization =
        (capacity > 0.0 && interval > 0.0) ? server_work[s] / (capacity * interval) : 0.0;
    total_power += server.power_w(utilization);
  }
  if (interval > 0.0) recorder_.append(kPowerSeries, total_power);
  last_power_time_ = now;
}

void Testbed::control_tick() {
  const double now = sim_.now();
  record_power(now);

  // ---- feedback control: demands per application --------------------------
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    const std::vector<double> demands = stacks_[i]->control_tick();
    for (std::size_t j = 0; j < demands.size(); ++j) {
      cluster_.vm(vm_ids_[i][j]).cpu_demand_ghz = demands[j];
    }
  }

  // ---- server-level arbitration: DVFS + grants -----------------------------
  std::vector<double> demands;
  for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
    const auto hosted = cluster_.vms_on(s);
    demands.clear();
    for (const datacenter::VmId vm : hosted) {
      demands.push_back(cluster_.vm(vm).cpu_demand_ghz);
    }
    datacenter::CpuResourceArbitrator arbitrator(1.1);
    datacenter::ArbitrationResult arb = arbitrator.arbitrate(cluster_.server(s).cpu(), demands);
    if (!config_.dvfs) {
      arb.frequency_ghz = cluster_.server(s).cpu().max_freq_ghz;
    }
    cluster_.server(s).set_frequency(arb.frequency_ghz);
    // Apply the granted allocations to the tier queues.
    for (std::size_t h = 0; h < hosted.size(); ++h) {
      const datacenter::VmId vm = hosted[h];
      // Find which app/tier this VM belongs to (few VMs; linear scan ok).
      for (std::size_t i = 0; i < vm_ids_.size(); ++i) {
        for (std::size_t j = 0; j < vm_ids_[i].size(); ++j) {
          if (vm_ids_[i][j] == vm) {
            stacks_[i]->apply_allocation(j, arb.allocations_ghz[h]);
          }
        }
      }
    }
  }

  probes_.sample(recorder_);
  sim_.schedule(now + config_.control_period_s, [this] { control_tick(); });
}

}  // namespace vdc::core
