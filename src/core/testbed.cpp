#include "core/testbed.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/log.hpp"

namespace vdc::core {

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
  if (config_.num_apps == 0 || config_.num_servers == 0) {
    throw std::invalid_argument("Testbed: need at least one app and one server");
  }

  // Identify the shared response-time model on a staging copy of the app.
  const app::AppConfig staging =
      app::default_two_tier_app("staging", config_.seed + 1000, config_.concurrency);
  SysIdExperimentResult sysid = identify_app_model(staging, config_.sysid);
  model_ = std::move(sysid.model);
  model_r2_ = sysid.r_squared;
  util::Log(util::LogLevel::kInfo, "testbed")
      << "identified ARX model, R^2 = " << model_r2_;

  // Cluster: the testbed machines (2 GHz dual-core class).
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    cluster_.add_server(datacenter::Server(datacenter::dual_core_2ghz(),
                                           datacenter::power_model_dual_2ghz(),
                                           /*memory_mb=*/8192.0));
  }

  // Applications, monitors, controllers, and their VMs.
  control::MpcConfig mpc = config_.mpc;
  mpc.period_s = config_.control_period_s;
  mpc.setpoint = config_.setpoint_s;

  response_series_.resize(config_.num_apps);
  allocation_series_.resize(config_.num_apps);
  for (std::size_t i = 0; i < config_.num_apps; ++i) {
    app::AppConfig app_config = app::default_two_tier_app(
        "app" + std::to_string(i + 1), config_.seed + i, config_.concurrency);
    auto application = std::make_unique<app::MultiTierApp>(sim_, std::move(app_config));
    auto monitor = std::make_unique<app::ResponseTimeMonitor>(0.9);
    app::ResponseTimeMonitor* monitor_ptr = monitor.get();
    application->set_response_callback(
        [monitor_ptr](double, double rt) { monitor_ptr->record(rt); });

    const std::size_t tiers = application->tier_count();
    std::vector<double> initial(tiers, 0.6);
    application->set_allocations(initial);

    controllers_.push_back(std::make_unique<ResponseTimeController>(model_, mpc, initial));

    // One VM per tier, spread round-robin over the servers.
    std::vector<datacenter::VmId> ids;
    for (std::size_t j = 0; j < tiers; ++j) {
      datacenter::Vm vm;
      vm.name = application->name() + (j == 0 ? "-web" : "-db");
      vm.role = j == 0 ? "web" : "db";
      vm.cpu_demand_ghz = initial[j];
      vm.memory_mb = 1024.0;
      const auto server = static_cast<datacenter::ServerId>(
          (i * tiers + j) % config_.num_servers);
      ids.push_back(cluster_.add_vm(vm, server));
    }
    vm_ids_.push_back(std::move(ids));
    apps_.push_back(std::move(application));
    monitors_.push_back(std::move(monitor));
  }
  last_work_done_.assign(config_.num_apps * 2, 0.0);
}

void Testbed::set_setpoint(std::size_t app, double setpoint_s) {
  controllers_.at(app)->set_setpoint(setpoint_s);
}

void Testbed::set_concurrency(std::size_t app, std::size_t concurrency) {
  apps_.at(app)->set_concurrency(concurrency);
}

app::PeriodStats Testbed::lifetime_stats(std::size_t app) const {
  return monitors_.at(app)->lifetime();
}

util::RunningStats Testbed::response_stats_after(std::size_t app, double from_s) const {
  util::RunningStats stats;
  const std::vector<double>& series = response_series_.at(app);
  const auto first = static_cast<std::size_t>(from_s / config_.control_period_s);
  for (std::size_t k = first; k < series.size(); ++k) stats.add(series[k]);
  return stats;
}

void Testbed::run_until(double until_s) {
  if (!loop_started_) {
    loop_started_ = true;
    for (auto& application : apps_) application->start();
    sim_.schedule(config_.control_period_s, [this] { control_tick(); });
    if (config_.enable_optimizer) {
      sim_.schedule(config_.optimizer_period_s, [this] { optimizer_tick(); });
    }
  }
  sim_.run_until(until_s);
}

void Testbed::optimizer_tick() {
  sim_.schedule(sim_.now() + config_.optimizer_period_s, [this] { optimizer_tick(); });
  // Re-planning while migrations are in flight would race the mapping.
  if (migrations_in_flight_ > 0) return;
  ++optimizer_invocations_;

  const consolidate::DataCenterSnapshot snapshot = consolidate::snapshot_of(cluster_);
  const consolidate::ConstraintSet constraints =
      consolidate::ConstraintSet::standard(config_.optimizer_utilization_target);
  consolidate::PlacementPlan plan;
  switch (config_.optimizer_algorithm) {
    case ConsolidationAlgorithm::kIpac: {
      plan = consolidate::ipac(snapshot, constraints).plan;
      break;
    }
    case ConsolidationAlgorithm::kPMapper: {
      plan = consolidate::pmapper(snapshot, constraints).plan;
      break;
    }
    case ConsolidationAlgorithm::kNone:
      break;
  }
  for (const consolidate::Move& move : plan.moves) start_migration(move.vm, move.to);
  if (plan.moves.empty()) cluster_.sleep_idle_servers();
}

void Testbed::start_migration(datacenter::VmId vm, datacenter::ServerId to) {
  // Pre-copy live migration: the VM keeps serving on the source while its
  // memory image crosses the network, stalls for the stop-and-copy
  // downtime, then resumes on the destination.
  const datacenter::MigrationModel& model = cluster_.migration_model();
  const double copy_s =
      std::max(0.0, model.duration_s(cluster_.vm(vm).memory_mb) - model.downtime_s);
  ++migrations_in_flight_;
  cluster_.wake(to);
  sim_.schedule_after(copy_s, [this, vm, to] {
    // Stop-and-copy: the tier stops processing for the downtime window.
    for (std::size_t i = 0; i < vm_ids_.size(); ++i) {
      for (std::size_t j = 0; j < vm_ids_[i].size(); ++j) {
        if (vm_ids_[i][j] == vm) apps_[i]->set_allocation(j, 0.0);
      }
    }
    sim_.schedule_after(cluster_.migration_model().downtime_s, [this, vm, to] {
      cluster_.migrate(vm, to, sim_.now());
      // Resume with the controller's current demand; the next control tick
      // re-arbitrates the destination server.
      for (std::size_t i = 0; i < vm_ids_.size(); ++i) {
        for (std::size_t j = 0; j < vm_ids_[i].size(); ++j) {
          if (vm_ids_[i][j] == vm) {
            apps_[i]->set_allocation(j, cluster_.vm(vm).cpu_demand_ghz);
          }
        }
      }
      --migrations_in_flight_;
      ++completed_migrations_;
      if (migrations_in_flight_ == 0) cluster_.sleep_idle_servers();
    });
  });
}

void Testbed::control_tick() {
  const double now = sim_.now();
  const double interval = now - last_power_time_;

  // ---- power over the elapsed interval (actual work done / capacity) -----
  double total_power = 0.0;
  {
    std::size_t vm_index = 0;
    std::vector<double> server_work(cluster_.server_count(), 0.0);
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      for (std::size_t j = 0; j < apps_[i]->tier_count(); ++j, ++vm_index) {
        const double done = apps_[i]->tier_work_done(j);
        const double delta = done - last_work_done_[vm_index];
        last_work_done_[vm_index] = done;
        server_work[cluster_.host_of(vm_ids_[i][j])] += delta;
      }
    }
    for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
      const datacenter::Server& server = cluster_.server(s);
      const double capacity = server.capacity_ghz();
      const double utilization =
          (capacity > 0.0 && interval > 0.0) ? server_work[s] / (capacity * interval) : 0.0;
      total_power += server.power_w(utilization);
    }
  }
  if (interval > 0.0) power_series_.push_back(total_power);
  last_power_time_ = now;

  // ---- feedback control: demands per application --------------------------
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const auto stats = monitors_[i]->harvest();
    response_series_[i].push_back(stats && stats->count > 0
                                      ? stats->quantile
                                      : controllers_[i]->last_measurement());
    const std::vector<double> demands = controllers_[i]->control(stats);
    allocation_series_[i].push_back(demands);
    for (std::size_t j = 0; j < demands.size(); ++j) {
      cluster_.vm(vm_ids_[i][j]).cpu_demand_ghz = demands[j];
    }
  }

  // ---- server-level arbitration: DVFS + grants -----------------------------
  std::vector<double> demands;
  for (datacenter::ServerId s = 0; s < cluster_.server_count(); ++s) {
    const auto hosted = cluster_.vms_on(s);
    demands.clear();
    for (const datacenter::VmId vm : hosted) {
      demands.push_back(cluster_.vm(vm).cpu_demand_ghz);
    }
    datacenter::CpuResourceArbitrator arbitrator(1.1);
    datacenter::ArbitrationResult arb = arbitrator.arbitrate(cluster_.server(s).cpu(), demands);
    if (!config_.dvfs) {
      arb.frequency_ghz = cluster_.server(s).cpu().max_freq_ghz;
    }
    cluster_.server(s).set_frequency(arb.frequency_ghz);
    // Apply the granted allocations to the tier queues.
    for (std::size_t h = 0; h < hosted.size(); ++h) {
      const datacenter::VmId vm = hosted[h];
      // Find which app/tier this VM belongs to (few VMs; linear scan ok).
      for (std::size_t i = 0; i < vm_ids_.size(); ++i) {
        for (std::size_t j = 0; j < vm_ids_[i].size(); ++j) {
          if (vm_ids_[i][j] == vm) {
            apps_[i]->set_allocation(j, arb.allocations_ghz[h]);
          }
        }
      }
    }
  }

  sim_.schedule(now + config_.control_period_s, [this] { control_tick(); });
}

}  // namespace vdc::core
