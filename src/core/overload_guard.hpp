// On-demand overload mitigation between optimizer invocations.
//
// Section III of the paper: "Between two consecutive invocations of the
// data center-level optimizer, it is possible that an unexpected increase
// of the workload can cause a severe overload on a server. To deal with
// this problem, the solution in this paper can be integrated with
// algorithms to move VMs from the overloaded servers to idle servers in an
// on-demand manner" (citing the authors' Co-Con work). This guard is that
// integration: it runs on the controller time scale, watches for servers
// whose demand exceeds capacity for several consecutive checks, and
// performs the minimal relief migrations immediately instead of waiting
// hours for the next IPAC invocation.
#pragma once

#include <cstddef>
#include <vector>

#include "consolidate/constraints.hpp"
#include "consolidate/minimum_slack.hpp"
#include "consolidate/snapshot.hpp"
#include "datacenter/cluster.hpp"

namespace vdc::core {

struct OverloadGuardConfig {
  /// Consecutive overloaded checks before the guard acts (debounce against
  /// demand jitter the controller will absorb by itself).
  std::size_t trigger_after_checks = 2;
  /// Utilization target the relieved servers are packed back to.
  double utilization_target = 0.9;
  consolidate::MinSlackOptions min_slack;
};

struct OverloadGuardReport {
  std::size_t overloaded_servers = 0;
  std::size_t migrations = 0;
  std::size_t woken_servers = 0;
  /// VMs that no server could absorb (the cluster itself is saturated).
  std::size_t unplaced = 0;
};

class OverloadGuard {
 public:
  explicit OverloadGuard(OverloadGuardConfig config = {});

  /// One check (call once per control period). Returns what was done.
  OverloadGuardReport check(datacenter::Cluster& cluster, double now_s);

  [[nodiscard]] std::size_t total_migrations() const noexcept { return total_migrations_; }
  [[nodiscard]] std::size_t total_activations() const noexcept { return total_activations_; }

 private:
  OverloadGuardConfig config_;
  /// Per-server consecutive-overload counters (resized lazily).
  std::vector<std::size_t> strikes_;
  std::size_t total_migrations_ = 0;
  std::size_t total_activations_ = 0;
};

}  // namespace vdc::core
