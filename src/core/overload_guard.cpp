#include "core/overload_guard.hpp"

#include <algorithm>

#include "consolidate/ffd.hpp"
#include "consolidate/pac.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::core {

OverloadGuard::OverloadGuard(OverloadGuardConfig config) : config_(config) {}

OverloadGuardReport OverloadGuard::check(datacenter::Cluster& cluster, double now_s) {
  OverloadGuardReport report;
  strikes_.resize(cluster.server_count(), 0);

  // Debounce: count consecutive overloads per server.
  std::vector<datacenter::ServerId> triggered;
  for (datacenter::ServerId s = 0; s < cluster.server_count(); ++s) {
    if (cluster.overloaded(s)) {
      if (++strikes_[s] >= config_.trigger_after_checks) triggered.push_back(s);
    } else {
      strikes_[s] = 0;
    }
  }
  report.overloaded_servers = triggered.size();
  if (triggered.empty()) return report;

  const consolidate::DataCenterSnapshot snapshot = consolidate::snapshot_of(cluster);
  consolidate::WorkingPlacement wp(snapshot);
  const consolidate::ConstraintSet constraints =
      consolidate::ConstraintSet::standard(config_.utilization_target);

  // Shed the smallest VMs from each triggered server until it is feasible.
  std::vector<consolidate::VmId> evicted;
  for (const datacenter::ServerId server : triggered) {
    while (!wp.hosted(server).empty() && !wp.feasible(server, constraints)) {
      const auto hosted = wp.hosted(server);
      consolidate::VmId victim = hosted.front();
      double victim_demand = snapshot.vm(victim).cpu_demand_ghz;
      for (const consolidate::VmId vm : hosted) {
        const double d = snapshot.vm(vm).cpu_demand_ghz;
        // vdc-lint: float-eq-ok exact equality gates the deterministic id tie-break; near-equal demands are legitimately ordered by value
        if (d < victim_demand || (d == victim_demand && vm < victim)) {
          victim = vm;
          victim_demand = d;
        }
      }
      wp.remove(victim);
      evicted.push_back(victim);
    }
  }

  // Place on active servers first, waking sleeping ones only if needed —
  // "move VMs from the overloaded servers to idle servers".
  const std::vector<datacenter::ServerId> order =
      consolidate::servers_by_power_efficiency(snapshot);
  std::vector<datacenter::ServerId> targets;
  for (const datacenter::ServerId s : order) {
    if (snapshot.server(s).active) targets.push_back(s);
  }
  for (const datacenter::ServerId s : order) {
    if (!snapshot.server(s).active) targets.push_back(s);
  }
  const consolidate::PacResult pac =
      consolidate::power_aware_consolidation(wp, evicted, constraints, config_.min_slack,
                                             targets);
  report.unplaced = pac.unplaced.size();

  const consolidate::PlacementPlan plan = wp.plan(pac.unplaced);
  for (const consolidate::Move& move : plan.moves) {
    if (!cluster.server(move.to).active()) {
      if (!cluster.wake(move.to)) continue;  // failed target: leave the VM put
      ++report.woken_servers;
      ++total_activations_;
    }
    cluster.migrate(move.vm, move.to, now_s);
    ++report.migrations;
    ++total_migrations_;
  }
  // Any VM that could not be placed stays on its (overloaded) origin.
  for (const datacenter::ServerId server : triggered) strikes_[server] = 0;
  return report;
}

}  // namespace vdc::core
