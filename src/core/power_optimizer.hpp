// Data-center-level power optimizer: periodically snapshots the cluster,
// runs the configured consolidation algorithm (IPAC or the pMapper
// baseline), pushes the resulting migrations/sleep transitions back to the
// cluster, and keeps statistics.
#pragma once

#include <memory>
#include <string>

#include "consolidate/constraints.hpp"
#include "consolidate/cost_policy.hpp"
#include "consolidate/ipac.hpp"
#include "consolidate/pmapper.hpp"
#include "datacenter/cluster.hpp"

namespace vdc::core {

enum class ConsolidationAlgorithm { kIpac, kPMapper, kNone };

[[nodiscard]] std::string to_string(ConsolidationAlgorithm algorithm);

struct OptimizerConfig {
  ConsolidationAlgorithm algorithm = ConsolidationAlgorithm::kIpac;
  /// Target utilization the CPU constraint packs to (headroom for demand
  /// growth between invocations).
  double utilization_target = 0.9;
  consolidate::IpacOptions ipac;
};

struct OptimizationOutcome {
  std::size_t migrations = 0;
  std::size_t unplaced = 0;
  std::size_t active_before = 0;
  std::size_t active_after = 0;
};

class PowerOptimizer {
 public:
  /// `policy` may be null (allow-all). Additional constraints can be added
  /// through `extra_constraints` (appended to the standard CPU+memory set).
  explicit PowerOptimizer(OptimizerConfig config,
                          std::shared_ptr<consolidate::MigrationCostPolicy> policy = nullptr);

  /// Installs an administrator-defined constraint alongside CPU+memory.
  void add_constraint(std::unique_ptr<consolidate::PlacementConstraint> constraint);

  /// Runs one optimization pass against the live cluster.
  OptimizationOutcome optimize(datacenter::Cluster& cluster, double now_s);

  [[nodiscard]] const OptimizerConfig& config() const noexcept { return config_; }
  /// Cumulative counters across invocations.
  [[nodiscard]] std::size_t total_migrations() const noexcept { return total_migrations_; }
  [[nodiscard]] std::size_t invocations() const noexcept { return invocations_; }

 private:
  OptimizerConfig config_;
  consolidate::ConstraintSet constraints_;
  std::shared_ptr<consolidate::MigrationCostPolicy> policy_;
  std::size_t total_migrations_ = 0;
  std::size_t invocations_ = 0;
};

}  // namespace vdc::core
