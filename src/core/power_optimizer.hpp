// Data-center-level power optimizer: periodically snapshots the cluster,
// runs the configured consolidation algorithm (IPAC or the pMapper
// baseline), pushes the resulting migrations/sleep transitions back to the
// cluster, and keeps statistics.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "consolidate/constraints.hpp"
#include "consolidate/cost_policy.hpp"
#include "consolidate/ipac.hpp"
#include "consolidate/pmapper.hpp"
#include "datacenter/cluster.hpp"

namespace vdc::core {

enum class ConsolidationAlgorithm { kIpac, kPMapper, kNone };

/// Which implementation of the consolidation algorithms to run. kFast is
/// the production engine (incremental aggregates, indexed target selection,
/// plan-exact Minimum Slack pruning); kNaive is the retained reference
/// implementation (consolidate::naive) used by differential tests and as a
/// fallback oracle. The two compute move-for-move identical plans for every
/// input — including under a binding step budget with epsilon escalation —
/// and differ only in *reported* step counts, where the fast engine's
/// pruning and analytic skips do less counted work (see DESIGN.md,
/// "Consolidation performance").
enum class ConsolidationEngine { kFast, kNaive };

[[nodiscard]] std::string to_string(ConsolidationAlgorithm algorithm);
[[nodiscard]] std::string to_string(ConsolidationEngine engine);

struct OptimizerConfig {
  ConsolidationAlgorithm algorithm = ConsolidationAlgorithm::kIpac;
  ConsolidationEngine engine = ConsolidationEngine::kFast;
  /// Target utilization the CPU constraint packs to (headroom for demand
  /// growth between invocations).
  double utilization_target = 0.9;
  consolidate::IpacOptions ipac;
  /// After a live migration of a VM fails (hypervisor abort, wake failure
  /// at the target), the optimizer stops proposing moves for that VM for
  /// this long — retrying a migration that just rolled back wastes
  /// bandwidth and usually fails again while the underlying fault window
  /// is open. Re-planning continues against the *realized* placement.
  double migration_backoff_s = 600.0;
  /// Rack-aware, migration-energy-budgeted consolidation (off by default:
  /// flat clusters and disabled runs plan move-for-move identically to the
  /// pre-topology optimizer). Forwarded to both engines so differential
  /// tests exercise the same gates.
  consolidate::RackAwareOptions rack;
};

struct OptimizationOutcome {
  std::size_t migrations = 0;
  std::size_t unplaced = 0;
  std::size_t active_before = 0;
  std::size_t active_after = 0;
};

class PowerOptimizer {
 public:
  /// `policy` may be null (allow-all). Additional constraints can be added
  /// through `extra_constraints` (appended to the standard CPU+memory set).
  explicit PowerOptimizer(OptimizerConfig config,
                          std::shared_ptr<consolidate::MigrationCostPolicy> policy = nullptr);

  /// Installs an administrator-defined constraint alongside CPU+memory.
  void add_constraint(std::unique_ptr<consolidate::PlacementConstraint> constraint);

  /// Computes one consolidation plan against the live cluster WITHOUT
  /// applying it. Moves of VMs still inside their failure backoff window
  /// are filtered out (the rest of the plan stands — targets only get
  /// fewer VMs, so feasibility is preserved). kNone yields an empty plan.
  [[nodiscard]] consolidate::PlacementPlan plan(const datacenter::Cluster& cluster,
                                               double now_s);

  /// Runs one optimization pass against the live cluster (plan + apply).
  OptimizationOutcome optimize(datacenter::Cluster& cluster, double now_s);

  /// Records that a migration of `vm` failed at `now_s`: the optimizer will
  /// not propose moving that VM again until `migration_backoff_s` elapses.
  void note_migration_failure(datacenter::VmId vm, double now_s);

  [[nodiscard]] const OptimizerConfig& config() const noexcept { return config_; }
  /// Cumulative counters across invocations.
  [[nodiscard]] std::size_t total_migrations() const noexcept { return total_migrations_; }
  [[nodiscard]] std::size_t invocations() const noexcept { return invocations_; }
  [[nodiscard]] std::size_t migration_failures() const noexcept { return migration_failures_; }
  /// Moves dropped from plans because their VM was backing off.
  [[nodiscard]] std::size_t moves_deferred() const noexcept { return moves_deferred_; }

 private:
  OptimizerConfig config_;
  consolidate::ConstraintSet constraints_;
  std::shared_ptr<consolidate::MigrationCostPolicy> policy_;
  std::size_t total_migrations_ = 0;
  std::size_t invocations_ = 0;
  std::size_t migration_failures_ = 0;
  std::size_t moves_deferred_ = 0;
  /// Per-VM "do not move before" deadline (absent = no backoff).
  std::map<datacenter::VmId, double> backoff_until_;
};

}  // namespace vdc::core
