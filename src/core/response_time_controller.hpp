// Application-level response-time controller: the glue between the
// response-time monitor (sensor) and the MPC (decision) for one multi-tier
// application. Produces the per-VM CPU *demands* that the server-level
// arbitrators then grant.
//
// Also watches for SLA infeasibility: the paper (Section IV-A) assumes the
// constrained problem is feasible and notes that when it is not — e.g. the
// application is I/O-bound — "no controller can guarantee the set points
// through CPU resource adaptation". The controller flags that condition
// (actuators saturated at c_max while the SLA stays violated) so the
// operator can bring other resources to bear.
#pragma once

#include <optional>
#include <vector>

#include "app/monitor.hpp"
#include "control/mpc.hpp"
#include "control/robust.hpp"

namespace vdc::core {

class ResponseTimeController {
 public:
  /// `model` and `config` come from system identification / tuning;
  /// `initial_allocations` seeds the controller state (GHz per tier VM).
  /// A `robust` config switches on the Makridis-style hardened variant:
  /// the model's input gain is derated by the uncertainty margin, the MPC
  /// tracks a tightened internal setpoint, the measurement is median-
  /// filtered against sensor spikes, and allocation release is rate-
  /// limited (delta_down_max). Without it, behavior is the paper's nominal
  /// MPC, bit for bit.
  ResponseTimeController(control::ArxModel model, control::MpcConfig config,
                         std::vector<double> initial_allocations,
                         std::optional<control::RobustConfig> robust = std::nullopt);

  /// One control period. `stats` is the monitor's harvest for the period;
  /// when no request completed (empty), the previous measurement is held —
  /// an empty window under load means requests are stuck, so the last
  /// (high) value keeps pressure on the controller. A harvest flagged
  /// *stale* (sensor pipeline wedged) instead degrades to MpcController::
  /// hold(): the previous allocation is kept and no feedback correction is
  /// made, because acting on old numbers as if they were fresh would steer
  /// the plant with fiction.
  [[nodiscard]] std::vector<double> control(const std::optional<app::PeriodStats>& stats);

  /// `setpoint_s` is the SLA value; the robust variant internally tracks
  /// setpoint_s * setpoint_margin.
  void set_setpoint(double setpoint_s) noexcept {
    mpc_.set_setpoint(robust_ ? setpoint_s * robust_->setpoint_margin : setpoint_s);
  }
  /// The setpoint the MPC tracks (already tightened in the robust variant).
  [[nodiscard]] double setpoint() const noexcept { return mpc_.setpoint(); }
  [[nodiscard]] const std::optional<control::RobustConfig>& robust() const noexcept {
    return robust_;
  }
  [[nodiscard]] double last_measurement() const noexcept { return last_measurement_; }
  [[nodiscard]] const control::MpcController& mpc() const noexcept { return mpc_; }
  [[nodiscard]] std::vector<double> current_demands() const {
    return mpc_.current_allocations();
  }

  /// True when the SLA has been violated for `infeasibility_window()`
  /// consecutive periods while CPU re-allocation has stopped helping
  /// (actuators railed at c_max, or the optimizer stationary despite the
  /// violation) — the set point cannot be reached through CPU adaptation
  /// alone (I/O bound, or simply unreachable).
  [[nodiscard]] bool sla_infeasible() const noexcept { return infeasible_; }
  [[nodiscard]] std::size_t infeasibility_window() const noexcept { return window_; }
  void set_infeasibility_window(std::size_t periods) noexcept { window_ = periods; }

  /// Periods degraded to hold() because the harvest was flagged stale.
  [[nodiscard]] std::size_t stale_holds() const noexcept { return stale_holds_; }

 private:
  std::optional<control::RobustConfig> robust_;
  control::MpcController mpc_;
  std::optional<control::MedianFilter> filter_;  // robust variant only
  double last_measurement_;
  /// Measurement as fed to the MPC (median-filtered in the robust variant;
  /// identical to last_measurement_ otherwise).
  double fed_measurement_;
  std::size_t window_ = 8;
  std::vector<bool> history_;  // per-period "violated and not improving"
  std::vector<double> previous_demands_;
  bool infeasible_ = false;
  std::size_t stale_holds_ = 0;
};

}  // namespace vdc::core
