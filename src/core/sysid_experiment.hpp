// System-identification experiment driver (Section IV-B): runs a dedicated
// simulation of one multi-tier application, excites the CPU allocations
// with a held pseudo-random sequence, records the 90-percentile response
// time each control period, and fits the ARX model the MPC uses.
#pragma once

#include <cstdint>

#include "app/multi_tier_app.hpp"
#include "control/arx.hpp"
#include "control/sysid.hpp"

namespace vdc::core {

struct SysIdExperimentConfig {
  double control_period_s = 4.0;
  std::size_t periods = 400;          ///< experiment length in control periods
  double warmup_s = 40.0;             ///< discard transients before recording
  /// Excitation range per tier. Chosen around the operating region where
  /// the target response times live; the plant is strongly nonlinear, so a
  /// locally identified linear model beats a globally sloppy one.
  double allocation_lo_ghz = 0.15;
  double allocation_hi_ghz = 0.7;
  std::size_t hold_periods = 3;       ///< excitation dwell time
  double quantile = 0.9;
  control::SysIdOptions arx{.na = 1, .nb = 2, .ridge_lambda = 1e-4};
  std::uint64_t seed = 99;
};

struct SysIdExperimentResult {
  control::ArxModel model;
  double r_squared = 0.0;
  control::SysIdData data;  ///< the recorded experiment, for inspection
};

/// Runs the experiment on a *fresh* instance of `app_config` (the live app
/// is never disturbed — identification happens on a staging copy, as on
/// the paper's prototype).
[[nodiscard]] SysIdExperimentResult identify_app_model(const app::AppConfig& app_config,
                                                       const SysIdExperimentConfig& config = {});

}  // namespace vdc::core
