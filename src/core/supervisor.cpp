#include "core/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdc::core {

void SupervisorConfig::validate() const {
  if (min_replicas == 0) throw std::invalid_argument("SupervisorConfig: min_replicas >= 1");
  if (max_replicas < min_replicas) {
    throw std::invalid_argument("SupervisorConfig: max_replicas < min_replicas");
  }
  if (!(saturation_fraction > 0.0) || saturation_fraction > 1.0) {
    throw std::invalid_argument("SupervisorConfig: saturation_fraction in (0, 1]");
  }
  if (!(violation_fraction >= 1.0) || !std::isfinite(violation_fraction)) {
    throw std::invalid_argument("SupervisorConfig: violation_fraction >= 1");
  }
  if (!(comfort_fraction > 0.0) || comfort_fraction >= 1.0) {
    throw std::invalid_argument("SupervisorConfig: comfort_fraction in (0, 1)");
  }
  if (!(scale_in_headroom > 0.0) || scale_in_headroom > 1.0) {
    throw std::invalid_argument("SupervisorConfig: scale_in_headroom in (0, 1]");
  }
  if (scale_out_patience == 0 || scale_in_patience == 0) {
    throw std::invalid_argument("SupervisorConfig: patience must be >= 1");
  }
}

ScalingSupervisor::ScalingSupervisor(SupervisorConfig config, std::size_t tier_count)
    : config_(config), violate_streak_(tier_count, 0), comfort_streak_(tier_count, 0) {
  config_.validate();
}

std::vector<ScaleDecision> ScalingSupervisor::decide(
    double measurement_s, double setpoint_s, std::span<const double> per_replica_demand_ghz,
    std::span<const double> c_max_ghz, std::span<const app::ReplicaSetStatus> tiers) {
  if (per_replica_demand_ghz.size() != violate_streak_.size() ||
      c_max_ghz.size() != violate_streak_.size() || tiers.size() != violate_streak_.size()) {
    throw std::invalid_argument("ScalingSupervisor: tier count mismatch");
  }
  std::vector<ScaleDecision> decisions;
  if (!config_.enabled) return decisions;

  const bool violated = measurement_s > config_.violation_fraction * setpoint_s;
  const bool comfortable = measurement_s < config_.comfort_fraction * setpoint_s;

  for (std::size_t j = 0; j < tiers.size(); ++j) {
    const app::ReplicaSetStatus& status = tiers[j];
    const double demand_ghz = per_replica_demand_ghz[j];
    const bool saturated = demand_ghz >= config_.saturation_fraction * c_max_ghz[j];

    violate_streak_[j] = (violated && saturated) ? violate_streak_[j] + 1 : 0;

    // Scale-in needs headroom: total demand spread over one fewer replica
    // must still fit under scale_in_headroom * c_max each.
    const double total_demand_ghz = demand_ghz * static_cast<double>(status.target);
    const bool headroom =
        status.target > 1 &&
        total_demand_ghz <= config_.scale_in_headroom * c_max_ghz[j] *
                                static_cast<double>(status.target - 1);
    comfort_streak_[j] = (comfortable && headroom) ? comfort_streak_[j] + 1 : 0;

    // Hold while a previous decision settles: a booting or draining replica
    // means the plant has not yet reached the state the last decision asked
    // for, and stacking moves on top of it oscillates.
    if (status.booting > 0 || status.draining > 0) continue;

    const std::size_t ceiling = std::min(config_.max_replicas, status.max_replicas);
    if (violate_streak_[j] >= config_.scale_out_patience && status.target < ceiling) {
      decisions.push_back({j, +1});
      violate_streak_[j] = 0;
      comfort_streak_[j] = 0;
    } else if (comfort_streak_[j] >= config_.scale_in_patience &&
               status.target > std::max<std::size_t>(1, config_.min_replicas)) {
      decisions.push_back({j, -1});
      violate_streak_[j] = 0;
      comfort_streak_[j] = 0;
    }
  }
  return decisions;
}

}  // namespace vdc::core
