#include "core/scenario.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "fault/injector.hpp"
#include "util/thread_pool.hpp"

namespace vdc::core {

const std::vector<double>& ScenarioResult::response_series(std::size_t app) const {
  return recorder.values(response_series_name(app));
}

const std::vector<std::vector<double>>& ScenarioResult::allocation_series(
    std::size_t app) const {
  return recorder.rows(allocation_series_name(app));
}

const std::vector<double>& ScenarioResult::power_series() const {
  return recorder.values(kPowerSeries);
}

util::RunningStats ScenarioResult::response_stats_after(std::size_t app,
                                                        double from_s) const {
  util::RunningStats stats;
  const std::vector<double>& series = response_series(app);
  const auto first = static_cast<std::size_t>(from_s / control_period_s);
  for (std::size_t k = first; k < series.size(); ++k) stats.add(series[k]);
  return stats;
}

namespace {

ScenarioResult run_app_stack(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.name = spec.name;
  result.control_period_s = spec.stack.mpc.period_s;
  result.app_count = 1;

  AppStackConfig stack = spec.stack;
  if (spec.seed != 0) stack.app.seed = spec.seed;

  telemetry::RecorderConfig recorder_config = spec.telemetry;
  recorder_config.sample_period_s = stack.mpc.period_s;
  result.recorder = telemetry::Recorder(recorder_config);

  sim::Simulation sim;
  std::unique_ptr<AppStack> app_stack;
  if (spec.policy) {
    app_stack = std::make_unique<AppStack>(sim, stack, spec.policy);
  } else {
    control::ArxModel model;
    if (spec.model) {
      model = *spec.model;
      result.model_r_squared = 1.0;
    } else {
      SysIdExperimentResult identified = identify_app_model(stack.app, spec.sysid);
      model = std::move(identified.model);
      result.model_r_squared = identified.r_squared;
    }
    app_stack = std::make_unique<AppStack>(sim, model, stack);
  }
  app_stack->bind_recorder(&result.recorder, response_series_name(0),
                           allocation_series_name(0));

  // Scenario-private injector: sensor fault kinds only (no cluster here).
  // Lives on this stack frame, which outlives the simulation drain below.
  fault::FaultInjector injector(spec.faults);
  if (injector.enabled()) app_stack->set_fault_injector(&injector, 0);

  for (const SetpointEvent& event : spec.setpoint_schedule) {
    sim.schedule(event.time_s,
                 [&stack = *app_stack, event] { stack.set_setpoint(event.setpoint_s); });
  }
  for (const ConcurrencyEvent& event : spec.concurrency_schedule) {
    sim.schedule(event.time_s,
                 [&stack = *app_stack, event] { stack.set_concurrency(event.concurrency); });
  }

  app_stack->start_control_loop();
  sim.drain_until(spec.duration_s);
  result.faults = injector.counters();
  if (const ResponseTimeController* controller = app_stack->controller()) {
    result.stale_holds = controller->stale_holds();
  }
  result.scale_outs = app_stack->app().scale_out_count();
  result.scale_ins = app_stack->app().scale_in_count();
  return result;
}

ScenarioResult run_testbed(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.name = spec.name;

  TestbedConfig config = spec.testbed;
  if (spec.seed != 0) config.seed = spec.seed;
  if (spec.model) config.model = spec.model;
  if (spec.faults.enabled()) config.faults = spec.faults;
  config.telemetry = spec.telemetry;  // Testbed pins sample_period_s itself
  result.control_period_s = config.control_period_s;
  result.app_count = config.num_apps;

  Testbed testbed(config);
  result.model_r_squared = testbed.model_r_squared();
  for (const SetpointEvent& event : spec.setpoint_schedule) {
    testbed.simulation().schedule(
        event.time_s, [&testbed, event] { testbed.set_setpoint(event.app, event.setpoint_s); });
  }
  for (const ConcurrencyEvent& event : spec.concurrency_schedule) {
    testbed.simulation().schedule(event.time_s, [&testbed, event] {
      testbed.set_concurrency(event.app, event.concurrency);
    });
  }

  testbed.run_until(spec.duration_s);
  result.completed_migrations = testbed.completed_migrations();
  result.optimizer_invocations = testbed.optimizer_invocations();
  result.faults = testbed.fault_injector().counters();
  result.failed_migrations = testbed.failed_migrations();
  result.vm_restarts = testbed.vm_restarts();
  result.scale_outs = testbed.scale_out_count();
  result.scale_ins = testbed.scale_in_count();
  for (std::size_t i = 0; i < config.num_apps; ++i) {
    if (const ResponseTimeController* controller = testbed.app_stack(i).controller()) {
      result.stale_holds += controller->stale_holds();
    }
  }
  result.recorder = testbed.take_recorder();
  return result;
}

}  // namespace

ScenarioResult ScenarioRunner::run(const ScenarioSpec& spec) const {
  if (spec.duration_s <= 0.0) {
    throw std::invalid_argument("ScenarioRunner: duration must be > 0");
  }
  switch (spec.engine) {
    case ScenarioSpec::Engine::kAppStack:
      return run_app_stack(spec);
    case ScenarioSpec::Engine::kTestbed:
      return run_testbed(spec);
  }
  throw std::logic_error("ScenarioRunner: unknown engine");
}

std::vector<ScenarioResult> ScenarioRunner::run_all(
    std::span<const ScenarioSpec> specs) const {
  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  if (specs.empty()) return results;

  std::size_t threads = threads_;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, specs.size());
  if (threads == 1) {
    for (const ScenarioSpec& spec : specs) results.push_back(run(spec));
    return results;
  }

  util::ThreadPool pool(threads);
  std::vector<std::future<ScenarioResult>> futures;
  futures.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    futures.push_back(pool.submit([this, &spec] { return run(spec); }));
  }
  for (std::future<ScenarioResult>& future : futures) results.push_back(future.get());
  return results;
}

}  // namespace vdc::core
