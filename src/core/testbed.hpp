// The hardware-testbed equivalent (Section VI-A): a small cluster of
// virtualized servers hosting several two-tier RUBBoS-like applications,
// each under its own MPC response-time controller, with per-server CPU
// arbitration and DVFS. This is the engine behind Figures 2-5.
#pragma once

#include <memory>
#include <vector>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "core/power_optimizer.hpp"
#include "core/response_time_controller.hpp"
#include "core/sysid_experiment.hpp"
#include "datacenter/cluster.hpp"
#include "sim/simulation.hpp"
#include "util/statistics.hpp"

namespace vdc::core {

struct TestbedConfig {
  std::size_t num_apps = 8;
  std::size_t num_servers = 4;
  double control_period_s = 4.0;
  double setpoint_s = 1.0;          ///< 1000 ms, the paper's default SLA
  std::size_t concurrency = 40;     ///< `ab` concurrency level per app
  std::uint64_t seed = 7;
  bool dvfs = true;                 ///< let the arbitrator throttle CPUs
  /// MPC tuning shared by all applications; the setpoint field is
  /// overwritten with `setpoint_s` per controller.
  control::MpcConfig mpc{
      .prediction_horizon = 12,
      .control_horizon = 3,
      .q_weight = 1.0,
      .r_weight = {1.0},
      .period_s = 4.0,
      .tref_s = 16.0,
      .setpoint = 1.0,
      .c_min = {0.15},
      .c_max = {1.5},
      .delta_max = 0.3,
      .terminal = control::MpcConfig::Terminal::kSoft,
      .terminal_weight = 50.0,
      .disturbance_gain = 0.5,
  };
  /// Identification experiment; run once and shared by all controllers
  /// (the applications are instances of the same benchmark, as on the
  /// paper's testbed).
  SysIdExperimentConfig sysid;

  // ---- data-center level (two-level integration, Section VII-A) ----------
  /// Run the power optimizer on the testbed cluster. Migrations follow live
  /// (pre-copy) semantics in the co-simulation: the VM keeps running on the
  /// source for the copy duration, then stalls for the stop-and-copy
  /// downtime before resuming on the destination.
  bool enable_optimizer = false;
  double optimizer_period_s = 300.0;
  ConsolidationAlgorithm optimizer_algorithm = ConsolidationAlgorithm::kIpac;
  double optimizer_utilization_target = 0.85;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Advances the co-simulation (control loop + applications) to absolute
  /// simulated time `until_s`. Callable repeatedly.
  void run_until(double until_s);

  [[nodiscard]] double now() const noexcept { return sim_.now(); }
  [[nodiscard]] std::size_t app_count() const noexcept { return apps_.size(); }

  [[nodiscard]] app::MultiTierApp& application(std::size_t i) { return *apps_.at(i); }
  void set_setpoint(std::size_t app, double setpoint_s);
  void set_concurrency(std::size_t app, std::size_t concurrency);

  /// The identified model all controllers share, and its fit quality.
  [[nodiscard]] const control::ArxModel& identified_model() const noexcept { return model_; }
  [[nodiscard]] double model_r_squared() const noexcept { return model_r2_; }

  // ---- recorded series (one sample per control period) -------------------
  [[nodiscard]] const std::vector<double>& response_series(std::size_t app) const {
    return response_series_.at(app);
  }
  [[nodiscard]] const std::vector<double>& power_series() const noexcept {
    return power_series_;
  }
  [[nodiscard]] const std::vector<std::vector<double>>& allocation_series(
      std::size_t app) const {
    return allocation_series_.at(app);
  }
  /// Response-time statistics over everything since construction.
  [[nodiscard]] app::PeriodStats lifetime_stats(std::size_t app) const;
  /// Statistics over periods recorded after `from_s` (skip settling).
  [[nodiscard]] util::RunningStats response_stats_after(std::size_t app, double from_s) const;

  [[nodiscard]] const datacenter::Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }
  /// Live migrations completed so far (two-level mode).
  [[nodiscard]] std::size_t completed_migrations() const noexcept {
    return completed_migrations_;
  }
  [[nodiscard]] std::size_t optimizer_invocations() const noexcept {
    return optimizer_invocations_;
  }

 private:
  void control_tick();
  void optimizer_tick();
  void start_migration(datacenter::VmId vm, datacenter::ServerId to);

  TestbedConfig config_;
  sim::Simulation sim_;
  datacenter::Cluster cluster_;
  std::vector<std::unique_ptr<app::MultiTierApp>> apps_;
  std::vector<std::unique_ptr<app::ResponseTimeMonitor>> monitors_;
  std::vector<std::unique_ptr<ResponseTimeController>> controllers_;
  /// vm_ids_[app][tier] -> VmId in cluster_.
  std::vector<std::vector<datacenter::VmId>> vm_ids_;
  control::ArxModel model_;
  double model_r2_ = 0.0;
  double last_power_time_ = 0.0;
  std::vector<double> last_work_done_;  // per app*tier, Gcycles
  std::vector<std::vector<double>> response_series_;
  std::vector<std::vector<std::vector<double>>> allocation_series_;
  std::vector<double> power_series_;
  bool loop_started_ = false;
  std::size_t migrations_in_flight_ = 0;
  std::size_t completed_migrations_ = 0;
  std::size_t optimizer_invocations_ = 0;
};

}  // namespace vdc::core
