// The hardware-testbed equivalent (Section VI-A): a small cluster of
// virtualized servers hosting several two-tier RUBBoS-like applications,
// each under its own MPC response-time controller, with per-server CPU
// arbitration and DVFS. This is the engine behind Figures 2-5.
//
// Structurally the Testbed is now a thin composition: a `Cluster`, one
// `AppStack` per application (plant + monitor + controller), a telemetry
// `Recorder` holding every recorded series, and the optimizer tick for the
// two-level mode. The legacy series accessors delegate into the recorder.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/app_stack.hpp"
#include "core/power_optimizer.hpp"
#include "core/sysid_experiment.hpp"
#include "datacenter/cluster.hpp"
#include "fault/injector.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulation.hpp"
#include "telemetry/probe.hpp"
#include "telemetry/recorder.hpp"
#include "util/statistics.hpp"

namespace vdc::core {

struct TestbedConfig {
  std::size_t num_apps = 8;
  std::size_t num_servers = 4;
  double control_period_s = 4.0;
  double setpoint_s = 1.0;          ///< 1000 ms, the paper's default SLA
  std::size_t concurrency = 40;     ///< `ab` concurrency level per app
  std::uint64_t seed = 7;
  bool dvfs = true;                 ///< let the arbitrator throttle CPUs
  /// MPC tuning shared by all applications; the setpoint field is
  /// overwritten with `setpoint_s` per controller.
  control::MpcConfig mpc{
      .prediction_horizon = 12,
      .control_horizon = 3,
      .q_weight = 1.0,
      .r_weight = {1.0},
      .period_s = 4.0,
      .tref_s = 16.0,
      .setpoint = 1.0,
      .c_min = {0.15},
      .c_max = {1.5},
      .delta_max = 0.3,
      .terminal = control::MpcConfig::Terminal::kSoft,
      .terminal_weight = 50.0,
      .disturbance_gain = 0.5,
  };
  /// Identification experiment; run once and shared by all controllers
  /// (the applications are instances of the same benchmark, as on the
  /// paper's testbed).
  SysIdExperimentConfig sysid;
  /// Pre-identified model: skips the identification experiment entirely.
  /// The ScenarioRunner uses this to share one model across a sweep.
  std::optional<control::ArxModel> model;

  // ---- data-center level (two-level integration, Section VII-A) ----------
  /// Run the power optimizer on the testbed cluster. Migrations follow live
  /// (pre-copy) semantics in the co-simulation: the VM keeps running on the
  /// source for the copy duration, then stalls for the stop-and-copy
  /// downtime before resuming on the destination.
  bool enable_optimizer = false;
  double optimizer_period_s = 300.0;
  ConsolidationAlgorithm optimizer_algorithm = ConsolidationAlgorithm::kIpac;
  double optimizer_utilization_target = 0.85;
  /// How long the optimizer refuses to re-propose moving a VM whose
  /// migration just failed (see OptimizerConfig::migration_backoff_s).
  double optimizer_migration_backoff_s = 600.0;
  /// Physical layout of the testbed servers. Empty (the default) keeps the
  /// cluster flat: no shared-infrastructure power, no rack coordinates, and
  /// byte-identical telemetry to the pre-topology testbed. Server ids in
  /// the topology must match the `num_servers` ids created here.
  datacenter::Topology topology;
  /// Budgeted rack-aware consolidation knobs forwarded to the optimizer
  /// (effective only when `topology` is non-empty and `.enabled` is set).
  consolidate::RackAwareOptions optimizer_rack;

  // ---- horizontal scaling (replica sets) ---------------------------------
  /// Replicas every tier of every application starts with. > 1 creates one
  /// VM per replica and activates the replica telemetry even without the
  /// supervisor. 1 (the default) is the pre-replication testbed, bit for
  /// bit.
  std::size_t initial_replicas = 1;
  /// Hard per-tier replica cap forwarded to the applications.
  std::size_t max_replicas = 8;
  /// Boot delay of a scaled-out replica (kBooting -> kServing).
  double replica_boot_delay_s = 30.0;
  /// Supervisory replica controller (outer discrete loop) shared by all
  /// applications. Disabled by default.
  SupervisorConfig supervisor;
  /// Robust controller variant (gain derating, setpoint margin, spike
  /// filter, release rate limit). nullopt = nominal MPC.
  std::optional<control::RobustConfig> robust;

  // ---- control-plane parallelism ----------------------------------------
  /// With at least this many applications, the per-app MPC solves of a
  /// control tick are batched onto ThreadPool::shared() (the decide phase
  /// only — monitor harvest and telemetry stay serial, and a barrier
  /// precedes per-server arbitration, so results are bit-identical to the
  /// serial path). Below the threshold the solves run inline: at testbed
  /// scale (8 apps) the pool's wake/handoff overhead exceeds the solve
  /// cost. Set to 0 to force the parallel path, SIZE_MAX to disable it.
  std::size_t parallel_control_min_apps = 16;

  // ---- sharded engine (parallel workload advance) -------------------------
  /// Number of workload shards the applications are partitioned into (block
  /// partition: app i lands on shard i*shards/num_apps, so each shard owns
  /// a contiguous app range). 0 (the default) is the single-event-loop
  /// legacy engine — the differential oracle every sharded run is tested
  /// against. >= 1 gives each shard its own event loop, fault streams, and
  /// telemetry recorder, advanced concurrently between control-period
  /// barriers; telemetry, plans, and counters are bit-identical to the
  /// legacy engine at any shard count (see DESIGN.md "Sharded engine").
  std::size_t shards = 0;
  /// Worker cap for the parallel shard advance and the sharded
  /// harvest/record phases (0 = hardware concurrency).
  std::size_t shard_threads = 0;

  // ---- telemetry storage --------------------------------------------------
  /// Recorder backend. Defaults to the tiered tsdb store so every figure
  /// bench and golden test exercises the streaming path; with the default
  /// retention covering a full testbed run its exports are byte-identical
  /// to the raw-vector oracle (Backend::kRawVectors, the historical
  /// behavior). `sample_period_s` is overwritten with `control_period_s`.
  telemetry::RecorderConfig telemetry{
      .backend = telemetry::RecorderConfig::Backend::kTsdb,
      .sample_period_s = 4.0,
      .tsdb = {},
  };

  // ---- chaos (fault injection) -------------------------------------------
  /// Deterministic fault schedule threaded through the co-simulation:
  /// migration aborts/slowdowns, wake failures, server crashes, sensor
  /// dropout/spikes/staleness, DVFS pinning. The default (empty) plan
  /// disables every hook at zero cost — outputs are byte-identical to a
  /// build without the fault layer.
  fault::FaultPlan faults;
};

/// Cluster-level telemetry series recorded once per control period.
inline constexpr const char* kPowerSeries = "cluster/power_w";
inline constexpr const char* kFrequencySeries = "cluster/freq_ghz_mean";
inline constexpr const char* kActiveServersSeries = "cluster/active_servers";
inline constexpr const char* kMigrationsInFlightSeries = "cluster/migrations_in_flight";
inline constexpr const char* kMigrationsCompletedSeries = "cluster/migrations_completed";
/// Registered ONLY when replication is active (supervisor enabled or
/// initial_replicas > 1) so single-replica telemetry stays byte-identical.
inline constexpr const char* kLiveVmsSeries = "cluster/live_vms";
/// Fault telemetry, registered ONLY when the fault plan is non-empty so
/// healthy runs export byte-identical tables.
inline constexpr const char* kFaultsInjectedSeries = "fault/injected_total";
inline constexpr const char* kFailedMigrationsSeries = "fault/failed_migrations";

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Advances the co-simulation (control loop + applications) to absolute
  /// simulated time `until_s`. Callable repeatedly.
  void run_until(double until_s);

  [[nodiscard]] double now() const noexcept { return sim_.now(); }
  [[nodiscard]] std::size_t app_count() const noexcept { return stacks_.size(); }

  [[nodiscard]] app::MultiTierApp& application(std::size_t i) {
    return stacks_.at(i)->app();
  }
  [[nodiscard]] AppStack& app_stack(std::size_t i) { return *stacks_.at(i); }
  void set_setpoint(std::size_t app, double setpoint_s);
  void set_concurrency(std::size_t app, std::size_t concurrency);

  /// The identified model all controllers share, and its fit quality.
  [[nodiscard]] const control::ArxModel& identified_model() const noexcept { return model_; }
  [[nodiscard]] double model_r_squared() const noexcept { return model_r2_; }

  // ---- recorded series (one sample per control period) -------------------
  /// The control-plane recorder: cluster-level series (power, frequency,
  /// probes) and annotations. In legacy mode (shards == 0) it holds every
  /// series; in sharded mode the per-app series live in per-shard recorders
  /// — use the series accessors below or `take_recorder()` for the merged
  /// view.
  [[nodiscard]] telemetry::Recorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const telemetry::Recorder& recorder() const noexcept { return recorder_; }
  /// Moves every recorded series out into one recorder, with the per-shard
  /// recorders merged ahead of the control-plane one in canonical (app,
  /// then cluster) order — byte-identical series layout to a legacy-mode
  /// run. The testbed's own series accessors are dead afterwards; call once
  /// when the run is over.
  [[nodiscard]] telemetry::Recorder take_recorder();
  [[nodiscard]] const std::vector<double>& response_series(std::size_t app) const;
  [[nodiscard]] const std::vector<double>& power_series() const;
  [[nodiscard]] const std::vector<std::vector<double>>& allocation_series(
      std::size_t app) const;
  /// Response-time statistics over everything since construction.
  [[nodiscard]] app::PeriodStats lifetime_stats(std::size_t app) const;
  /// Statistics over periods recorded after `from_s` (skip settling).
  [[nodiscard]] util::RunningStats response_stats_after(std::size_t app, double from_s) const;

  [[nodiscard]] const datacenter::Cluster& cluster() const noexcept { return cluster_; }
  /// The control-plane spine loop. External schedule events (setpoint and
  /// concurrency changes) belong here: they execute in the serial phase of
  /// every barrier, at any shard count.
  [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }
  [[nodiscard]] const sim::ShardedEngine& engine() const noexcept { return engine_; }
  /// Live migrations completed so far (two-level mode).
  [[nodiscard]] std::size_t completed_migrations() const noexcept {
    return completed_migrations_;
  }
  [[nodiscard]] std::size_t optimizer_invocations() const noexcept {
    return optimizer_invocations_;
  }

  // ---- fault observability -----------------------------------------------
  [[nodiscard]] const fault::FaultInjector& fault_injector() const noexcept {
    return injector_;
  }
  [[nodiscard]] const PowerOptimizer& optimizer() const noexcept { return optimizer_; }
  /// Migrations that rolled back (injected abort, wake failure, or a crash
  /// under the copy phase).
  [[nodiscard]] std::size_t failed_migrations() const noexcept { return failed_migrations_; }
  /// Crash-evicted VMs restarted on a new server by the optimizer.
  [[nodiscard]] std::size_t vm_restarts() const noexcept { return restarts_; }

  /// Supervisor-driven replica churn, summed over all applications.
  [[nodiscard]] std::uint64_t scale_out_count() const noexcept;
  [[nodiscard]] std::uint64_t scale_in_count() const noexcept;

 private:
  void control_tick();
  void optimizer_tick();
  void run_optimizer_pass();
  void start_migration(datacenter::VmId vm, datacenter::ServerId to);
  void start_restart(datacenter::VmId vm, datacenter::ServerId to);
  void fail_migration(datacenter::VmId vm, const std::string& label);
  void crash_server(datacenter::ServerId id);
  void repair_crashed_server(datacenter::ServerId id);
  void crash_rack(datacenter::RackId id);
  void repair_rack(datacenter::RackId id);
  /// Recorded only while faults are enabled (healthy telemetry unchanged).
  void annotate(const std::string& label);
  void apply_tier_allocation(datacenter::VmId vm, double ghz);
  void record_power(double now);
  /// Creates the cluster VM backing one app-side replica slot.
  datacenter::VmId create_replica_vm(std::size_t app, std::size_t tier, std::size_t slot);
  /// App-side retire callback: tombstones the backing VM.
  void on_replica_retired(std::size_t app, std::size_t tier, std::size_t slot);
  /// Applies the supervisors' pending replica decisions (serial phase).
  void apply_scale_decisions();
  [[nodiscard]] datacenter::ServerId pick_replica_host();
  /// Runs `body(i)` for every application — serially in legacy mode, one
  /// parallel task per shard (apps in index order within each shard) in
  /// sharded mode. The body must only touch app-local / shard-local state.
  void for_each_shard_apps(const std::function<void(std::size_t)>& body);
  /// Block partition: the shard owning app `i` (0 when unsharded).
  [[nodiscard]] std::size_t shard_of_app(std::size_t i) const noexcept {
    return engine_.shard_count() == 0 ? 0 : i * engine_.shard_count() / config_.num_apps;
  }
  /// The recorder app `i`'s series stream into (its shard's recorder, or
  /// the control-plane recorder in legacy mode).
  [[nodiscard]] telemetry::Recorder& recorder_for_app(std::size_t i) noexcept {
    return shard_recorders_.empty() ? recorder_ : *shard_recorders_[shard_of_app(i)];
  }
  [[nodiscard]] const telemetry::Recorder& recorder_for_app(std::size_t i) const noexcept {
    return shard_recorders_.empty() ? recorder_ : *shard_recorders_[shard_of_app(i)];
  }

  TestbedConfig config_;
  sim::ShardedEngine engine_;
  sim::Simulation& sim_;  ///< the control-plane spine (engine_.spine())
  datacenter::Cluster cluster_;
  std::vector<std::unique_ptr<AppStack>> stacks_;
  /// vm_ids_[app][tier][replica slot] -> VmId in cluster_ (kNoVm for a
  /// retired/free slot; a reused slot gets a fresh VM).
  std::vector<std::vector<std::vector<datacenter::VmId>>> vm_ids_;
  /// Inverse map: VmId -> {app, tier, replica}, so allocation push-down is
  /// O(1) per VM instead of a scan over every application's VM list.
  struct VmSlot {
    std::size_t app = 0;
    std::size_t tier = 0;
    std::size_t replica = 0;
  };
  std::vector<VmSlot> vm_slots_;
  control::ArxModel model_;
  double model_r2_ = 0.0;
  telemetry::Recorder recorder_;
  /// Sharded mode: one recorder per shard for the per-app series, appended
  /// from that shard's harvest/record phase without any cross-shard
  /// synchronization; merged into canonical order by take_recorder().
  /// unique_ptr for stable addresses across construction.
  std::vector<std::unique_ptr<telemetry::Recorder>> shard_recorders_;
  /// Serializes replica retirement (cluster tombstone + slot bookkeeping):
  /// drained replicas retire from inside their shard's advance, possibly
  /// concurrently across shards. The retire operations commute, so the
  /// outcome is deterministic regardless of arrival order.
  std::mutex retire_mutex_;
  telemetry::ProbeSet probes_;
  fault::FaultInjector injector_;
  PowerOptimizer optimizer_;
  double last_power_time_s_ = 0.0;
  std::vector<double> last_work_done_;  // per VmId, Gcycles
  bool replication_active_ = false;
  bool loop_started_ = false;
  std::size_t migrations_in_flight_ = 0;
  std::size_t completed_migrations_ = 0;
  std::size_t optimizer_invocations_ = 0;
  std::size_t failed_migrations_ = 0;
  std::size_t restarts_ = 0;
};

}  // namespace vdc::core
