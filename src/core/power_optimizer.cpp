#include "core/power_optimizer.hpp"

#include <stdexcept>

namespace vdc::core {

std::string to_string(ConsolidationAlgorithm algorithm) {
  switch (algorithm) {
    case ConsolidationAlgorithm::kIpac: return "IPAC";
    case ConsolidationAlgorithm::kPMapper: return "pMapper";
    case ConsolidationAlgorithm::kNone: return "none";
  }
  return "?";
}

PowerOptimizer::PowerOptimizer(OptimizerConfig config,
                               std::shared_ptr<consolidate::MigrationCostPolicy> policy)
    : config_(config),
      constraints_(consolidate::ConstraintSet::standard(config.utilization_target)),
      policy_(std::move(policy)) {
  if (!policy_) policy_ = std::make_shared<consolidate::AllowAllPolicy>();
}

void PowerOptimizer::add_constraint(
    std::unique_ptr<consolidate::PlacementConstraint> constraint) {
  constraints_.add(std::move(constraint));
}

OptimizationOutcome PowerOptimizer::optimize(datacenter::Cluster& cluster, double now_s) {
  ++invocations_;
  OptimizationOutcome outcome;
  outcome.active_before = cluster.active_server_count();

  const consolidate::DataCenterSnapshot snapshot = consolidate::snapshot_of(cluster);
  consolidate::PlacementPlan plan;
  switch (config_.algorithm) {
    case ConsolidationAlgorithm::kIpac: {
      const consolidate::IpacReport report =
          consolidate::ipac(snapshot, constraints_, *policy_, config_.ipac);
      plan = report.plan;
      break;
    }
    case ConsolidationAlgorithm::kPMapper: {
      const consolidate::PMapperReport report = consolidate::pmapper(snapshot, constraints_);
      plan = report.plan;
      break;
    }
    case ConsolidationAlgorithm::kNone:
      cluster.sleep_idle_servers();
      outcome.active_after = cluster.active_server_count();
      return outcome;
  }

  consolidate::apply_plan(cluster, plan, now_s);
  outcome.migrations = plan.moves.size();
  outcome.unplaced = plan.unplaced.size();
  outcome.active_after = cluster.active_server_count();
  total_migrations_ += outcome.migrations;
  return outcome;
}

}  // namespace vdc::core
