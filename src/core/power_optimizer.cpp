#include "core/power_optimizer.hpp"

#include <stdexcept>

#include "consolidate/naive.hpp"

namespace vdc::core {

std::string to_string(ConsolidationAlgorithm algorithm) {
  switch (algorithm) {
    case ConsolidationAlgorithm::kIpac: return "IPAC";
    case ConsolidationAlgorithm::kPMapper: return "pMapper";
    case ConsolidationAlgorithm::kNone: return "none";
  }
  return "?";
}

std::string to_string(ConsolidationEngine engine) {
  switch (engine) {
    case ConsolidationEngine::kFast: return "fast";
    case ConsolidationEngine::kNaive: return "naive";
  }
  return "?";
}

PowerOptimizer::PowerOptimizer(OptimizerConfig config,
                               std::shared_ptr<consolidate::MigrationCostPolicy> policy)
    : config_(config),
      constraints_(consolidate::ConstraintSet::standard(config.utilization_target)),
      policy_(std::move(policy)) {
  if (!policy_) policy_ = std::make_shared<consolidate::FreeMigrationPolicy>();
}

void PowerOptimizer::add_constraint(
    std::unique_ptr<consolidate::PlacementConstraint> constraint) {
  constraints_.add(std::move(constraint));
}

consolidate::PlacementPlan PowerOptimizer::plan(const datacenter::Cluster& cluster,
                                                double now_s) {
  const consolidate::DataCenterSnapshot snapshot = consolidate::snapshot_of(cluster);
  consolidate::PlacementPlan out;
  switch (config_.algorithm) {
    case ConsolidationAlgorithm::kIpac: {
      const consolidate::IpacReport report =
          config_.engine == ConsolidationEngine::kNaive
              ? consolidate::naive::ipac(snapshot, constraints_, *policy_, config_.ipac,
                                         config_.rack)
              : consolidate::ipac(snapshot, constraints_, *policy_, config_.ipac, config_.rack);
      out = report.plan;
      break;
    }
    case ConsolidationAlgorithm::kPMapper: {
      const consolidate::PMapperReport report =
          config_.engine == ConsolidationEngine::kNaive
              ? consolidate::naive::pmapper(snapshot, constraints_, config_.rack)
              : consolidate::pmapper(snapshot, constraints_, config_.rack);
      out = report.plan;
      break;
    }
    case ConsolidationAlgorithm::kNone:
      return out;
  }

  // Drop moves of VMs still backing off from a failed migration; placements
  // of homeless VMs (from == kNoServer) are never deferred — a VM with no
  // host gets no CPU, so re-placing it always beats waiting.
  if (!backoff_until_.empty()) {
    std::vector<consolidate::Move> kept;
    kept.reserve(out.moves.size());
    for (const consolidate::Move& move : out.moves) {
      const auto it = backoff_until_.find(move.vm);
      if (move.from != datacenter::kNoServer && it != backoff_until_.end() &&
          now_s < it->second) {
        ++moves_deferred_;
        continue;
      }
      kept.push_back(move);
    }
    out.moves = std::move(kept);
    // Expired entries can go; the map stays small.
    std::erase_if(backoff_until_, [now_s](const auto& kv) { return kv.second <= now_s; });
  }
  return out;
}

void PowerOptimizer::note_migration_failure(datacenter::VmId vm, double now_s) {
  ++migration_failures_;
  backoff_until_[vm] = now_s + config_.migration_backoff_s;
}

OptimizationOutcome PowerOptimizer::optimize(datacenter::Cluster& cluster, double now_s) {
  ++invocations_;
  OptimizationOutcome outcome;
  outcome.active_before = cluster.active_server_count();

  if (config_.algorithm == ConsolidationAlgorithm::kNone) {
    cluster.sleep_idle_servers();
    outcome.active_after = cluster.active_server_count();
    return outcome;
  }

  const consolidate::PlacementPlan decided = plan(cluster, now_s);
  consolidate::apply_plan(cluster, decided, now_s);
  outcome.migrations = decided.moves.size();
  outcome.unplaced = decided.unplaced.size();
  outcome.active_after = cluster.active_server_count();
  total_migrations_ += outcome.migrations;
  return outcome;
}

}  // namespace vdc::core
