// Declarative experiment scenarios. A `ScenarioSpec` describes one
// independent run — which engine (a standalone AppStack or the full
// Testbed co-simulation), how long, which setpoint/concurrency schedule,
// and which seed — and `ScenarioRunner::run_all` executes a table of specs
// in parallel on a `util::ThreadPool`. Each scenario owns its private
// `sim::Simulation` and RNG stream, so results are bit-identical across
// runs and thread counts: the figure sweeps (fig4/fig5), multi-scenario
// figures (fig3), and ablation grids are all spec tables now.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/app_stack.hpp"
#include "core/testbed.hpp"
#include "fault/plan.hpp"
#include "telemetry/recorder.hpp"
#include "util/statistics.hpp"

namespace vdc::core {

/// Scheduled SLA set-point change (testbed engine: per application).
struct SetpointEvent {
  double time_s = 0.0;
  std::size_t app = 0;
  double setpoint_s = 1.0;
};

/// Scheduled workload change (the `ab` concurrency level).
struct ConcurrencyEvent {
  double time_s = 0.0;
  std::size_t app = 0;
  std::size_t concurrency = 40;
};

struct ScenarioSpec {
  std::string name = "scenario";

  enum class Engine {
    kAppStack,  ///< one application, demands applied directly (no cluster)
    kTestbed,   ///< the full co-simulation: cluster, arbitration, optimizer
  };
  Engine engine = Engine::kAppStack;

  AppStackConfig stack;    ///< engine == kAppStack
  TestbedConfig testbed;   ///< engine == kTestbed

  /// Pre-identified ARX model shared across the sweep (identified once, as
  /// the paper does for Figures 4/5). When absent, a standalone scenario
  /// identifies its own model from `stack.app` with `sysid`; the testbed
  /// engine always identifies internally in that case.
  std::optional<control::ArxModel> model;
  SysIdExperimentConfig sysid;

  /// Per-period decision override for standalone scenarios (e.g. a static
  /// provisioning baseline). Leave empty to use the MPC. Must be safe to
  /// call from the runner's worker thread; stateless lambdas are.
  AppStack::Policy policy;

  double duration_s = 1200.0;
  /// Deterministic per-scenario seed; when nonzero it overrides
  /// `stack.app.seed` / `testbed.seed`.
  std::uint64_t seed = 0;

  /// Deterministic fault schedule. For the testbed engine this is copied
  /// into `testbed.faults` (every fault kind applies); for the standalone
  /// engine a scenario-private injector drives the sensor fault kinds
  /// (drop/spike/stale — there is no cluster to crash). The default empty
  /// plan leaves results byte-identical to a fault-free build.
  fault::FaultPlan faults;

  std::vector<SetpointEvent> setpoint_schedule;
  std::vector<ConcurrencyEvent> concurrency_schedule;

  /// Telemetry storage for the scenario's recorder. Defaults to the tiered
  /// tsdb backend (bounded memory, per-period + hourly rollups); switch to
  /// Backend::kRawVectors for the historical unbounded vectors — the
  /// differential oracle the tsdb path is tested against byte-for-byte.
  /// `sample_period_s` is overwritten with the engine's control period.
  telemetry::RecorderConfig telemetry{
      .backend = telemetry::RecorderConfig::Backend::kTsdb,
      .sample_period_s = 4.0,
      .tsdb = {},
  };
};

struct ScenarioResult {
  std::string name;
  telemetry::Recorder recorder;      ///< every series the scenario recorded
  double control_period_s = 4.0;
  std::size_t app_count = 0;
  double model_r_squared = 0.0;
  std::size_t completed_migrations = 0;
  std::size_t optimizer_invocations = 0;

  // ---- fault/chaos observability (zero when the plan was empty) ----------
  /// Per-kind injected fault totals, copied from the scenario's injector.
  fault::FaultCounters faults;
  /// Migrations that rolled back or never started (testbed engine).
  std::size_t failed_migrations = 0;
  /// Crash-evicted VMs the optimizer restarted elsewhere (testbed engine).
  std::size_t vm_restarts = 0;
  /// Control periods where the MPC held its last allocation because the
  /// sensor pipeline was stale (summed over apps).
  std::size_t stale_holds = 0;

  // ---- horizontal scaling (zero unless replication is active) ------------
  /// Replica scale-out / scale-in events, summed over apps and tiers.
  std::uint64_t scale_outs = 0;
  std::uint64_t scale_ins = 0;

  [[nodiscard]] const std::vector<double>& response_series(std::size_t app = 0) const;
  [[nodiscard]] const std::vector<std::vector<double>>& allocation_series(
      std::size_t app = 0) const;
  /// Cluster power per period (testbed engine only).
  [[nodiscard]] const std::vector<double>& power_series() const;
  /// Statistics over response samples recorded after `from_s`.
  [[nodiscard]] util::RunningStats response_stats_after(std::size_t app,
                                                        double from_s) const;
};

class ScenarioRunner {
 public:
  /// `threads` = 0 uses the hardware concurrency.
  explicit ScenarioRunner(std::size_t threads = 0) noexcept : threads_(threads) {}

  /// Executes one scenario to completion (always serial).
  [[nodiscard]] ScenarioResult run(const ScenarioSpec& spec) const;

  /// Executes independent scenarios in parallel, one ThreadPool job each.
  /// Results come back in spec order and are identical to a serial run.
  [[nodiscard]] std::vector<ScenarioResult> run_all(
      std::span<const ScenarioSpec> specs) const;

 private:
  std::size_t threads_;
};

}  // namespace vdc::core
