// One application's complete control stack: the simulated multi-tier app
// (plant), the response-time monitor (sensor), and the MPC response-time
// controller (decision) with all their wiring — response callback, initial
// allocations, and the per-period control tick. This used to be duplicated
// across `core::Testbed` and half a dozen benchmark mains; both now compose
// an AppStack instead.
//
// Two usage modes:
//   * standalone — `start_control_loop()` self-schedules a tick every
//     control period and applies the controller's demands directly (no
//     server arbitration); the figure sweeps run this way.
//   * embedded — the owner (Testbed) calls `control_tick()` each period to
//     obtain the CPU *demands*, arbitrates them per server, and pushes the
//     granted allocations back through `apply_allocation`.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "app/monitor.hpp"
#include "app/multi_tier_app.hpp"
#include "control/mpc.hpp"
#include "control/robust.hpp"
#include "core/response_time_controller.hpp"
#include "core/supervisor.hpp"
#include "fault/injector.hpp"
#include "sim/simulation.hpp"
#include "telemetry/recorder.hpp"

namespace vdc::core {

struct AppStackConfig {
  app::AppConfig app;                    ///< plant (name, seed, concurrency, tiers)
  double monitor_quantile = 0.9;         ///< the paper's 90-percentile SLA
  app::SlaMetric metric = app::SlaMetric::kQuantile;
  /// MPC tuning; `period_s` is the control period and `setpoint` the SLA.
  control::MpcConfig mpc;
  double initial_allocation_ghz = 0.6;   ///< per-tier starting allocation
  /// Horizontal-scaling supervisor (outer discrete loop). Disabled by
  /// default: replica counts stay at their configured initial values and
  /// the stack behaves exactly as the pre-replication build. MPC mode only.
  SupervisorConfig supervisor;
  /// Robust controller variant (Makridis-style gain derating, setpoint
  /// margin, spike filter, release rate limit). nullopt = nominal MPC.
  std::optional<control::RobustConfig> robust;
};

/// Canonical telemetry series names shared by AppStack, Testbed, and the
/// ScenarioRunner: "app<i>/p90" (scalar) and "app<i>/alloc" (vector).
[[nodiscard]] std::string response_series_name(std::size_t app_index);
[[nodiscard]] std::string allocation_series_name(std::size_t app_index);
/// Per-tier committed replica counts, "app<i>/replicas" (vector) — only
/// recorded when replication is active (supervisor enabled or any tier
/// starting with more than one replica), so healthy single-replica
/// telemetry stays byte-identical to the pre-replication build.
[[nodiscard]] std::string replica_series_name(std::size_t app_index);

class AppStack {
 public:
  /// Replaces the MPC with an arbitrary per-period decision (e.g. a static
  /// allocation baseline). Must map the period's monitor harvest to the
  /// per-tier demands; stateless policies are safe to share across
  /// scenarios that run in parallel.
  using Policy = std::function<std::vector<double>(const std::optional<app::PeriodStats>&)>;

  /// MPC-controlled stack; `model` is copied into the controller.
  AppStack(sim::Simulation& sim, const control::ArxModel& model, AppStackConfig config);
  /// Policy-driven stack (no model, no MPC).
  AppStack(sim::Simulation& sim, AppStackConfig config, Policy policy);

  AppStack(const AppStack&) = delete;
  AppStack& operator=(const AppStack&) = delete;

  /// Streams the per-period response/allocation samples into `recorder`
  /// under the given series names. Call before the first tick.
  void bind_recorder(telemetry::Recorder* recorder, std::string response_series,
                     std::string allocation_series);

  /// Routes this stack's sensor path through a fault injector: response
  /// samples may be dropped or spiked, and whole periods flagged stale
  /// (which degrades the controller to a hold). `app_index` is the target
  /// id sensor fault windows match against. The injector must outlive the
  /// stack; pass nullptr to detach.
  void set_fault_injector(fault::FaultInjector* injector, std::uint32_t app_index);

  /// Starts the client population (call once before running the simulation).
  void start();

  /// Standalone mode: starts the app and self-schedules a control tick
  /// every period, applying the decided demands directly to the tiers.
  void start_control_loop();

  /// One control period: harvests the monitor, records telemetry, and
  /// returns the decided per-tier CPU demands (GHz). Does NOT apply them —
  /// the caller either applies them verbatim (standalone) or grants
  /// arbitrated allocations via `apply_allocation`. Equivalent to
  /// harvest_tick() + decide_tick() + record_decision().
  [[nodiscard]] std::vector<double> control_tick();

  // ---- split control tick (parallel control plane) -----------------------
  // `control_tick` decomposed into its serial and parallelizable parts so
  // an owner driving many stacks can batch the expensive MPC solves onto a
  // thread pool. Call order per period: harvest_tick (serial — touches the
  // fault injector and the shared telemetry recorder), then decide_tick
  // (safe to run concurrently with other stacks' decide_tick: it only
  // touches this stack's controller/policy state), then record_decision
  // (serial — appends to the recorder). The composition is bit-identical to
  // control_tick().

  /// Harvests the monitor, applies sensor-fault staleness, records the
  /// response sample, and updates the held measurement. Serial phase.
  [[nodiscard]] std::optional<app::PeriodStats> harvest_tick();

  /// Pure decision: maps the harvested stats to per-tier CPU demands via
  /// the MPC controller (or policy). Mutates only this stack's controller
  /// state — stacks may decide concurrently. Parallel phase.
  [[nodiscard]] std::vector<double> decide_tick(const std::optional<app::PeriodStats>& stats);

  /// Appends the decided demands to the allocation telemetry. Serial phase.
  void record_decision(std::span<const double> demands);

  void apply_allocation(std::size_t tier, double ghz);
  void apply_allocations(std::span<const double> ghz);
  /// Grants an arbitrated allocation to ONE replica slot (an embedding
  /// owner maps each replica to its own VM, so grants arrive per VM).
  void apply_replica_allocation(std::size_t tier, std::size_t slot, double ghz);

  // ---- horizontal scaling ------------------------------------------------

  /// Scale decisions produced by the supervisor during the last
  /// decide_tick(), not yet applied. Standalone mode applies them itself
  /// via apply_scaling(); an embedding owner (Testbed) takes them here and
  /// performs the cluster-side bookkeeping (VM creation/retirement) around
  /// the app-side scale_out/scale_in calls.
  [[nodiscard]] std::vector<ScaleDecision> take_scale_decisions();
  /// Applies (and clears) the pending scale decisions directly to the app.
  void apply_scaling();
  /// True when the supervisor is enabled or any tier starts with more than
  /// one replica — gates the replica telemetry series.
  [[nodiscard]] bool replication_active() const noexcept { return replication_active_; }
  [[nodiscard]] const ScalingSupervisor* supervisor() const noexcept {
    return supervisor_ ? &*supervisor_ : nullptr;
  }

  [[nodiscard]] app::MultiTierApp& app() noexcept { return *app_; }
  [[nodiscard]] const app::MultiTierApp& app() const noexcept { return *app_; }
  [[nodiscard]] app::ResponseTimeMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] const app::ResponseTimeMonitor& monitor() const noexcept { return monitor_; }
  /// Null for policy-driven stacks.
  [[nodiscard]] ResponseTimeController* controller() noexcept { return controller_.get(); }
  [[nodiscard]] const ResponseTimeController* controller() const noexcept {
    return controller_.get();
  }

  [[nodiscard]] std::size_t tier_count() const noexcept { return app_->tier_count(); }
  [[nodiscard]] double control_period_s() const noexcept { return config_.mpc.period_s; }
  /// The SLA value of the last non-empty period (the controller's held
  /// measurement in MPC mode).
  [[nodiscard]] double last_measurement() const noexcept;

  void set_setpoint(double setpoint_s);
  void set_concurrency(std::size_t concurrency) { app_->set_concurrency(concurrency); }

 private:
  AppStack(sim::Simulation& sim, AppStackConfig config);  // shared wiring
  void loop_tick();

  sim::Simulation& sim_;
  AppStackConfig config_;
  std::unique_ptr<app::MultiTierApp> app_;
  app::ResponseTimeMonitor monitor_;
  std::unique_ptr<ResponseTimeController> controller_;
  Policy policy_;
  std::optional<ScalingSupervisor> supervisor_;
  std::vector<ScaleDecision> pending_scale_;
  telemetry::Recorder* recorder_ = nullptr;
  std::string response_series_;
  std::string allocation_series_;
  std::string replica_series_;
  fault::FaultInjector* fault_ = nullptr;
  std::uint32_t fault_index_ = 0;
  double held_measurement_;  // policy mode's substitute for the controller's
  double sla_setpoint_;      // unscaled SLA (the robust MPC tracks a margin of it)
  bool replication_active_ = false;
  bool loop_started_ = false;
};

}  // namespace vdc::core
