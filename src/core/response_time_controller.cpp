#include "core/response_time_controller.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vdc::core {

namespace {

control::ArxModel harden_model(control::ArxModel model,
                               const std::optional<control::RobustConfig>& robust) {
  if (!robust) return model;
  robust->validate();
  return control::derate_gain(std::move(model), robust->gain_margin);
}

control::MpcConfig harden_config(control::MpcConfig config,
                                 const std::optional<control::RobustConfig>& robust) {
  if (!robust) return config;
  config.setpoint *= robust->setpoint_margin;
  if (robust->release_slew_ghz > 0.0 && config.delta_max > 0.0) {
    config.delta_down_max = std::min(robust->release_slew_ghz, config.delta_max);
  }
  return config;
}

}  // namespace

ResponseTimeController::ResponseTimeController(control::ArxModel model,
                                               control::MpcConfig config,
                                               std::vector<double> initial_allocations,
                                               std::optional<control::RobustConfig> robust)
    : robust_(std::move(robust)),
      mpc_(harden_model(std::move(model), robust_), harden_config(config, robust_)),
      last_measurement_(config.setpoint),
      fed_measurement_(mpc_.setpoint()) {
  if (robust_ && robust_->spike_window > 1) filter_.emplace(robust_->spike_window);
  mpc_.reset(mpc_.setpoint(), initial_allocations);
}

std::vector<double> ResponseTimeController::control(
    const std::optional<app::PeriodStats>& stats) {
  if (stats && stats->stale) {
    // Sensor pipeline wedged: hold the allocation and skip the feedback
    // update — the infeasibility detector also pauses, since it would be
    // voting on numbers that carry no new information.
    ++stale_holds_;
    return mpc_.hold();
  }
  if (stats && stats->count > 0) {
    last_measurement_ = stats->controlled;
    // The robust variant feeds the MPC a windowed median, rejecting
    // isolated sensor spikes; the nominal path feeds the raw sample.
    fed_measurement_ = filter_ ? filter_->apply(stats->controlled) : stats->controlled;
  }
  std::vector<double> demands = mpc_.step(fed_measurement_);

  // Infeasibility watch: the SLA stays violated while CPU re-allocation has
  // stopped helping — either every actuator is railed at its upper bound,
  // or the optimizer is stationary (|dc| negligible) despite the violation.
  const bool violated = fed_measurement_ > mpc_.setpoint() * 1.1;
  const control::MpcConfig& config = mpc_.config();
  bool railed = true;
  bool stalled = true;
  for (std::size_t m = 0; m < demands.size(); ++m) {
    const double range = config.c_max[m] - config.c_min[m];
    if (demands[m] < config.c_max[m] - 0.01 * range) railed = false;
    if (!previous_demands_.empty() &&
        std::abs(demands[m] - previous_demands_[m]) > 0.02 * range) {
      stalled = false;
    }
  }
  if (previous_demands_.empty()) stalled = false;
  previous_demands_ = demands;

  // Windowed majority vote: occasional QP wobble must not reset the
  // detector, but a genuine recovery (violation clears) must.
  history_.push_back(violated && (railed || stalled));
  if (history_.size() > window_) history_.erase(history_.begin());
  if (!violated) {
    infeasible_ = false;
    history_.clear();
  } else if (history_.size() == window_) {
    const auto hits = static_cast<std::size_t>(
        std::count(history_.begin(), history_.end(), true));
    if (hits * 5 >= window_ * 4) infeasible_ = true;  // >= 80% of the window
  }
  return demands;
}

}  // namespace vdc::core
