#include "core/app_stack.hpp"

#include <stdexcept>
#include <utility>

namespace vdc::core {

std::string response_series_name(std::size_t app_index) {
  return "app" + std::to_string(app_index) + "/p90";
}

std::string allocation_series_name(std::size_t app_index) {
  return "app" + std::to_string(app_index) + "/alloc";
}

std::string replica_series_name(std::size_t app_index) {
  return "app" + std::to_string(app_index) + "/replicas";
}

AppStack::AppStack(sim::Simulation& sim, AppStackConfig config)
    : sim_(sim),
      config_(std::move(config)),
      app_(std::make_unique<app::MultiTierApp>(sim_, config_.app)),
      monitor_(config_.monitor_quantile, config_.metric),
      held_measurement_(config_.mpc.setpoint),
      sla_setpoint_(config_.mpc.setpoint) {
  replication_active_ = config_.supervisor.enabled;
  for (const app::TierConfig& tier : config_.app.tiers) {
    if (tier.initial_replicas > 1) replication_active_ = true;
  }
  app_->set_response_callback([this](double, double rt) {
    // Sensor fault hooks: a disabled injector (the default) early-outs on
    // both queries without touching its RNG, so the nominal path is
    // unchanged down to the bit.
    if (fault_ != nullptr && fault_->enabled()) {
      if (fault_->sensor_drops(sim_.now(), fault_index_)) {
        monitor_.note_dropped();
        return;
      }
      rt *= fault_->sensor_spike(sim_.now(), fault_index_);
    }
    monitor_.record(rt);
  });
  app_->set_allocations(
      std::vector<double>(app_->tier_count(), config_.initial_allocation_ghz));
}

AppStack::AppStack(sim::Simulation& sim, const control::ArxModel& model,
                   AppStackConfig config)
    : AppStack(sim, std::move(config)) {
  controller_ = std::make_unique<ResponseTimeController>(
      model, config_.mpc,
      std::vector<double>(app_->tier_count(), config_.initial_allocation_ghz),
      config_.robust);
  if (config_.supervisor.enabled) {
    supervisor_.emplace(config_.supervisor, app_->tier_count());
  }
}

AppStack::AppStack(sim::Simulation& sim, AppStackConfig config, Policy policy)
    : AppStack(sim, std::move(config)) {
  if (!policy) throw std::invalid_argument("AppStack: empty policy");
  if (config_.supervisor.enabled) {
    // The supervisor reasons about the MPC's saturation against c_max; a
    // policy stack has neither.
    throw std::invalid_argument("AppStack: supervisor requires MPC mode");
  }
  policy_ = std::move(policy);
}

void AppStack::bind_recorder(telemetry::Recorder* recorder, std::string response_series,
                             std::string allocation_series) {
  recorder_ = recorder;
  response_series_ = std::move(response_series);
  allocation_series_ = std::move(allocation_series);
  if (recorder_ != nullptr) {
    recorder_->declare_scalar(response_series_);
    recorder_->declare_vector(allocation_series_);
    if (replication_active_) {
      // Gated so healthy single-replica telemetry stays byte-identical.
      replica_series_ = response_series_;
      const std::size_t slash = replica_series_.rfind('/');
      replica_series_ = replica_series_.substr(0, slash) + "/replicas";
      recorder_->declare_vector(replica_series_);
    }
  }
}

void AppStack::set_fault_injector(fault::FaultInjector* injector, std::uint32_t app_index) {
  fault_ = injector;
  fault_index_ = app_index;
  // The sensor queries below draw from the injector's per-app stream; make
  // sure it exists now, while we are still serial.
  if (injector != nullptr && injector->enabled()) {
    injector->prepare_sensor_streams(app_index + 1);
  }
}

void AppStack::start() { app_->start(); }

void AppStack::start_control_loop() {
  if (loop_started_) return;
  loop_started_ = true;
  start();
  sim_.schedule_after(config_.mpc.period_s, [this] { loop_tick(); });
}

void AppStack::loop_tick() {
  apply_allocations(control_tick());
  apply_scaling();
  sim_.schedule_after(config_.mpc.period_s, [this] { loop_tick(); });
}

std::vector<double> AppStack::control_tick() {
  const std::optional<app::PeriodStats> stats = harvest_tick();
  std::vector<double> demands = decide_tick(stats);
  record_decision(demands);
  return demands;
}

std::optional<app::PeriodStats> AppStack::harvest_tick() {
  if (fault_ != nullptr && fault_->enabled() &&
      fault_->sensor_stale(sim_.now(), fault_index_)) {
    monitor_.mark_stale();
  }
  const std::optional<app::PeriodStats> stats = monitor_.harvest();
  // Record BEFORE deciding so an empty period logs the held (previous)
  // measurement, exactly as the controller perceives it. A stale period's
  // numbers are old news, so the held value is what gets logged too.
  const bool fresh = stats && stats->count > 0 && !stats->stale;
  if (recorder_ != nullptr) {
    recorder_->append_at(response_series_, sim_.now(),
                         fresh ? stats->controlled : last_measurement());
  }
  if (fresh) held_measurement_ = stats->controlled;
  return stats;
}

std::vector<double> AppStack::decide_tick(const std::optional<app::PeriodStats>& stats) {
  std::vector<double> demands = controller_ ? controller_->control(stats) : policy_(stats);
  if (supervisor_) {
    // Outer discrete decision: replica counts, from this stack's state only
    // (parallel-safe). Applied later in the serial phase — apply_scaling()
    // standalone, or the owner via take_scale_decisions().
    std::vector<app::ReplicaSetStatus> status;
    status.reserve(app_->tier_count());
    for (std::size_t j = 0; j < app_->tier_count(); ++j) {
      status.push_back(app_->replica_status(j));
    }
    pending_scale_ = supervisor_->decide(controller_->last_measurement(), sla_setpoint_,
                                         demands, controller_->mpc().config().c_max, status);
  }
  return demands;
}

void AppStack::record_decision(std::span<const double> demands) {
  if (recorder_ != nullptr) {
    recorder_->append(allocation_series_, std::vector<double>(demands.begin(), demands.end()));
    if (replication_active_ && !replica_series_.empty()) {
      std::vector<double> replicas;
      replicas.reserve(app_->tier_count());
      for (std::size_t j = 0; j < app_->tier_count(); ++j) {
        replicas.push_back(static_cast<double>(app_->replica_status(j).target));
      }
      recorder_->append(replica_series_, std::move(replicas));
    }
  }
}

std::vector<ScaleDecision> AppStack::take_scale_decisions() {
  return std::exchange(pending_scale_, {});
}

void AppStack::apply_scaling() {
  for (const ScaleDecision& decision : pending_scale_) {
    if (decision.delta > 0) {
      app_->scale_out(decision.tier);
    } else if (decision.delta < 0) {
      app_->scale_in(decision.tier);
    }
  }
  pending_scale_.clear();
}

void AppStack::apply_allocation(std::size_t tier, double ghz) {
  app_->set_allocation(tier, ghz);
}

void AppStack::apply_allocations(std::span<const double> ghz) {
  app_->set_allocations(ghz);
}

void AppStack::apply_replica_allocation(std::size_t tier, std::size_t slot, double ghz) {
  app_->set_replica_allocation(tier, slot, ghz);
}

double AppStack::last_measurement() const noexcept {
  return controller_ ? controller_->last_measurement() : held_measurement_;
}

void AppStack::set_setpoint(double setpoint_s) {
  if (!controller_) throw std::logic_error("AppStack: policy-driven stack has no setpoint");
  sla_setpoint_ = setpoint_s;
  controller_->set_setpoint(setpoint_s);
}

}  // namespace vdc::core
