// Event-queue and PS-queue auditors for the discrete-event kernel.
//
// The DES substrate promises two things everything above it depends on:
// simulated time never rewinds, and no event is ever scheduled in the past.
// The PS-queue additionally promises that job residuals shrink toward zero
// (never below, beyond rounding) so service conservation holds. Header-only:
// the functions compile to nothing when checks are off.
#pragma once

#include <cmath>
#include <cstddef>

#include "check/check.hpp"

namespace vdc::sim::audit {

/// A newly scheduled event must carry a finite timestamp no earlier than
/// the current clock.
inline void event_time(double now_s, double event_time_s) {
  VDC_INVARIANT(std::isfinite(event_time_s),
                "event timestamp is not finite: t=" << event_time_s);
  VDC_INVARIANT(event_time_s >= now_s,
                "event scheduled in the past: t=" << event_time_s << " now=" << now_s);
}

/// Executing the event queue never moves the clock backwards.
inline void clock_monotonic(double previous_s, double next_s) {
  VDC_INVARIANT(next_s >= previous_s,
                "simulation clock rewound: " << previous_s << " -> " << next_s);
}

/// A job residual after a processor-sharing sync: finite and nonnegative
/// up to floating-point rounding of the per-job share.
inline void ps_residual(double remaining_gcycles) {
  VDC_INVARIANT(std::isfinite(remaining_gcycles) && remaining_gcycles >= -1e-6,
                "PS job residual went negative: " << remaining_gcycles << " Gcycles");
}

/// PS-queue accounting: cumulative work and busy time only grow.
inline void ps_accounting(double work_done_gcycles, double busy_time_s) {
  VDC_INVARIANT(work_done_gcycles >= 0.0 && std::isfinite(work_done_gcycles),
                "work_done is invalid: " << work_done_gcycles);
  VDC_INVARIANT(busy_time_s >= 0.0 && std::isfinite(busy_time_s),
                "busy_time is invalid: " << busy_time_s);
}

/// Stalled time (jobs resident but zero capacity) is tracked separately from
/// busy time; both must stay finite and nonnegative.
inline void ps_stall_accounting(double busy_time_s, double stalled_time_s) {
  VDC_INVARIANT(busy_time_s >= 0.0 && std::isfinite(busy_time_s),
                "busy_time is invalid: " << busy_time_s);
  VDC_INVARIANT(stalled_time_s >= 0.0 && std::isfinite(stalled_time_s),
                "stalled_time is invalid: " << stalled_time_s);
}

/// A job's finish mark in cumulative per-job service (virtual time) must sit
/// at or ahead of the queue's current virtual time — a mark in the virtual
/// past would mean the job should already have completed.
inline void ps_finish_mark(double vtime_gcycles, double mark_gcycles) {
  VDC_INVARIANT(std::isfinite(mark_gcycles), "finish mark is not finite: " << mark_gcycles);
  VDC_INVARIANT(mark_gcycles >= vtime_gcycles - 1e-6,
                "finish mark in the virtual past: mark=" << mark_gcycles
                                                         << " vtime=" << vtime_gcycles);
}

/// Event-slab conservation: every slot is either live (armed) or on the free
/// list. Violations mean a leaked or double-freed event record.
inline void event_slab(std::size_t live, std::size_t slab_size, std::size_t free_size) {
  VDC_INVARIANT(live + free_size == slab_size,
                "event slab leak: live=" << live << " free=" << free_size
                                         << " slab=" << slab_size);
}

}  // namespace vdc::sim::audit
