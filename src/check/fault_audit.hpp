// Fault-plan auditors: a chaos schedule is itself an input that must be
// well-formed, or a "robustness" run silently tests nothing (a window with
// probability 0.0 typo'd from 1.0, a crash window that ends before it
// starts, a DVFS pin at a negative frequency). Validated once when the
// FaultInjector adopts a plan; compiled out under -DVDC_CHECKS=OFF like
// every other auditor.
#pragma once

#include <cmath>

#include "check/check.hpp"
#include "fault/plan.hpp"

namespace vdc::fault::audit {

inline void window(const FaultWindow& w) {
  VDC_ASSERT(w.start_s >= 0.0, to_string(w.kind) << " window starts at " << w.start_s);
  VDC_ASSERT(w.end_s > w.start_s, to_string(w.kind) << " window [" << w.start_s << ", "
                                                    << w.end_s << ") is empty or inverted");
  VDC_ASSERT(w.probability >= 0.0 && w.probability <= 1.0,
             to_string(w.kind) << " probability " << w.probability << " outside [0,1]");
  switch (w.kind) {
    case FaultKind::kMigrationSlowdown:
      VDC_ASSERT(w.magnitude >= 1.0,
                 "slowdown factor " << w.magnitude << " would speed migrations up");
      break;
    case FaultKind::kSensorSpike:
      VDC_ASSERT(w.magnitude > 0.0 && std::isfinite(w.magnitude),
                 "spike factor " << w.magnitude << " is not a positive finite multiplier");
      break;
    case FaultKind::kDvfsPin:
      VDC_ASSERT(w.magnitude > 0.0 && std::isfinite(w.magnitude),
                 "pinned frequency " << w.magnitude << " GHz is not positive finite");
      VDC_ASSERT(w.target != kAnyTarget, "DVFS pin requires an explicit server target");
      break;
    case FaultKind::kServerCrash:
      VDC_ASSERT(w.target != kAnyTarget, "server crash requires an explicit server target");
      VDC_ASSERT(std::isfinite(w.start_s), "crash start must be a concrete time");
      break;
    case FaultKind::kRackFailure:
      VDC_ASSERT(w.target != kAnyTarget, "rack failure requires an explicit rack target");
      VDC_ASSERT(std::isfinite(w.start_s), "rack failure start must be a concrete time");
      break;
    default:
      break;
  }
}

/// Every window well-formed. Called by FaultInjector when adopting a plan.
inline void plan(const FaultPlan& p) {
  for (const FaultWindow& w : p.windows) window(w);
}

}  // namespace vdc::fault::audit
