// Consolidation auditors: a PlacementPlan emitted by IPAC, pMapper, FFD or
// Minimum Slack must be *applicable* (every move names a live VM/server and
// a correct source host, no VM is moved twice) and *feasible* (every server
// that receives a VM satisfies the full constraint set — Algorithm 1's
// generalised bin check — with its final residents).
#pragma once

#include <span>
#include <vector>

#include "check/check.hpp"
#include "consolidate/constraints.hpp"
#include "consolidate/snapshot.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate::audit {

/// One server currently satisfies the constraint set with its residents.
inline void server_feasible(const WorkingPlacement& placement, ServerId server,
                            const ConstraintSet& constraints) {
  VDC_INVARIANT(placement.feasible(server, constraints),
                "server " << server << " violates the constraint set (demand "
                          << placement.cpu_demand(server) << " GHz, capacity "
                          << placement.snapshot().server(server).max_capacity_ghz << " GHz)");
}

/// Full plan audit against the snapshot it was computed from. Applies the
/// moves to a scratch placement and checks:
///   * ids are in range and each `from` matches the VM's current host;
///   * no VM is moved twice, and no moved VM is also reported unplaced;
///   * every receiving server ends feasible under `constraints`.
/// Servers that only *shed* VMs are exempt: a cluster may start overloaded
/// (that is what relief is for), but no algorithm may make a server worse.
inline void plan(const DataCenterSnapshot& snapshot, const PlacementPlan& plan_to_check,
                 const ConstraintSet& constraints) {
#if VDC_CHECKS_ENABLED
  WorkingPlacement scratch(snapshot);
  std::vector<bool> moved(snapshot.vms.size(), false);
  std::vector<ServerId> receivers;
  for (const Move& move : plan_to_check.moves) {
    VDC_INVARIANT(move.vm < snapshot.vms.size(), "move names unknown VM " << move.vm);
    VDC_INVARIANT(move.to < snapshot.servers.size(),
                  "move targets unknown server " << move.to);
    VDC_INVARIANT(!moved[move.vm], "VM " << move.vm << " is moved twice");
    moved[move.vm] = true;
    VDC_INVARIANT(scratch.host_of(move.vm) == move.from,
                  "move 'from' is stale for VM " << move.vm << ": recorded " << move.from
                                                 << ", actual " << scratch.host_of(move.vm));
    VDC_INVARIANT(move.from != move.to, "no-op move for VM " << move.vm);
    if (move.from != datacenter::kNoServer) scratch.remove(move.vm);
    scratch.place(move.vm, move.to);
    receivers.push_back(move.to);
  }
  for (const VmId vm : plan_to_check.unplaced) {
    VDC_INVARIANT(vm < snapshot.vms.size(), "unplaced list names unknown VM " << vm);
    VDC_INVARIANT(!moved[vm], "VM " << vm << " is both moved and unplaced");
    if (scratch.host_of(vm) != datacenter::kNoServer) scratch.remove(vm);
  }
  for (const ServerId server : receivers) server_feasible(scratch, server, constraints);
#else
  static_cast<void>(snapshot);
  static_cast<void>(plan_to_check);
  static_cast<void>(constraints);
#endif
}

/// A Minimum Slack (Algorithm 1) selection: every selected VM is a distinct
/// candidate, and the server admits its residents plus the whole selection.
inline void min_slack_selection(const WorkingPlacement& placement, ServerId server,
                                std::span<const VmId> candidates,
                                const ConstraintSet& constraints,
                                std::span<const VmId> selected) {
#if VDC_CHECKS_ENABLED
  const DataCenterSnapshot& snapshot = placement.snapshot();
  std::vector<bool> is_candidate(snapshot.vms.size(), false);
  for (const VmId vm : candidates) is_candidate[vm] = true;
  std::vector<const VmSnapshot*> resident;
  for (const VmId vm : placement.hosted(server)) resident.push_back(&snapshot.vm(vm));
  std::vector<bool> seen(snapshot.vms.size(), false);
  for (const VmId vm : selected) {
    VDC_INVARIANT(vm < snapshot.vms.size() && is_candidate[vm],
                  "Minimum Slack selected non-candidate VM " << vm);
    VDC_INVARIANT(!seen[vm], "Minimum Slack selected VM " << vm << " twice");
    seen[vm] = true;
    resident.push_back(&snapshot.vm(vm));
  }
  // An empty selection is always legal (the server may already be
  // overloaded — relief targets are); a non-empty one must be admissible.
  VDC_INVARIANT(selected.empty() || constraints.admits(snapshot.server(server), resident),
                "Minimum Slack selection is inadmissible on server " << server);
#else
  static_cast<void>(placement);
  static_cast<void>(server);
  static_cast<void>(candidates);
  static_cast<void>(constraints);
  static_cast<void>(selected);
#endif
}

}  // namespace vdc::consolidate::audit
