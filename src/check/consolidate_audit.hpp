// Consolidation auditors: a PlacementPlan emitted by IPAC, pMapper, FFD or
// Minimum Slack must be *applicable* (every move names a live VM/server and
// a correct source host, no VM is moved twice) and *feasible* (every server
// that receives a VM satisfies the full constraint set — Algorithm 1's
// generalised bin check — with its final residents).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "check/check.hpp"
#include "consolidate/constraints.hpp"
#include "consolidate/snapshot.hpp"
#include "consolidate/working_placement.hpp"

namespace vdc::consolidate::audit {

/// One server currently satisfies the constraint set with its residents.
inline void server_feasible(const WorkingPlacement& placement, ServerId server,
                            const ConstraintSet& constraints) {
  VDC_INVARIANT(placement.feasible(server, constraints),
                "server " << server << " violates the constraint set (demand "
                          << placement.cpu_demand_ghz(server) << " GHz, capacity "
                          << placement.snapshot().server(server).max_capacity_ghz << " GHz)");
}

/// Full plan audit against the snapshot it was computed from. Applies the
/// moves to a scratch placement and checks:
///   * ids are in range and each `from` matches the VM's current host;
///   * no VM is moved twice, and no moved VM is also reported unplaced;
///   * every receiving server ends feasible under `constraints`.
/// Servers that only *shed* VMs are exempt: a cluster may start overloaded
/// (that is what relief is for), but no algorithm may make a server worse.
inline void plan(const DataCenterSnapshot& snapshot, const PlacementPlan& plan_to_check,
                 const ConstraintSet& constraints) {
#if VDC_CHECKS_ENABLED
  WorkingPlacement scratch(snapshot);
  std::vector<bool> moved(snapshot.vms.size(), false);
  std::vector<ServerId> receivers;
  for (const Move& move : plan_to_check.moves) {
    VDC_INVARIANT(move.vm < snapshot.vms.size(), "move names unknown VM " << move.vm);
    VDC_INVARIANT(move.to < snapshot.servers.size(),
                  "move targets unknown server " << move.to);
    VDC_INVARIANT(!moved[move.vm], "VM " << move.vm << " is moved twice");
    moved[move.vm] = true;
    VDC_INVARIANT(scratch.host_of(move.vm) == move.from,
                  "move 'from' is stale for VM " << move.vm << ": recorded " << move.from
                                                 << ", actual " << scratch.host_of(move.vm));
    VDC_INVARIANT(move.from != move.to, "no-op move for VM " << move.vm);
    if (move.from != datacenter::kNoServer) scratch.remove(move.vm);
    scratch.place(move.vm, move.to);
    receivers.push_back(move.to);
  }
  for (const VmId vm : plan_to_check.unplaced) {
    VDC_INVARIANT(vm < snapshot.vms.size(), "unplaced list names unknown VM " << vm);
    VDC_INVARIANT(!moved[vm], "VM " << vm << " is both moved and unplaced");
    if (scratch.host_of(vm) != datacenter::kNoServer) scratch.remove(vm);
  }
  // Feasibility is a property of the final placement, so each receiving
  // server needs checking once, not once per move that landed on it.
  std::sort(receivers.begin(), receivers.end());
  receivers.erase(std::unique(receivers.begin(), receivers.end()), receivers.end());
  for (const ServerId server : receivers) server_feasible(scratch, server, constraints);
#else
  static_cast<void>(snapshot);
  static_cast<void>(plan_to_check);
  static_cast<void>(constraints);
#endif
}

/// A Minimum Slack (Algorithm 1) selection: every selected VM is a distinct
/// candidate, and the server admits its residents plus the whole selection.
inline void min_slack_selection(const WorkingPlacement& placement, ServerId server,
                                std::span<const VmId> candidates,
                                const ConstraintSet& constraints,
                                std::span<const VmId> selected) {
#if VDC_CHECKS_ENABLED
  // This auditor runs on every Minimum Slack call — once per server PAC
  // visits — so its cost must scale with the call's *selection*, not the
  // fleet or the candidate list: fleet-sized scratch here would
  // re-quadratize the consolidation pass the fast engine exists to avoid,
  // and most calls (servers nothing fits on) select nothing at all.
  if (selected.empty()) return;
  const DataCenterSnapshot& snapshot = placement.snapshot();
  // Sort only the (small) selection and stream the candidate list through
  // it once: sorting the candidates themselves would cost O(n log n) per
  // selecting call, which breaks the scaling promise above on relief-sized
  // candidate lists.
  std::vector<VmId> sorted_selected(selected.begin(), selected.end());
  std::sort(sorted_selected.begin(), sorted_selected.end());
  for (std::size_t i = 0; i < sorted_selected.size(); ++i) {
    const VmId vm = sorted_selected[i];
    VDC_INVARIANT(vm < snapshot.vms.size(), "Minimum Slack selected unknown VM " << vm);
    VDC_INVARIANT(i == 0 || sorted_selected[i - 1] != vm,
                  "Minimum Slack selected VM " << vm << " twice");
  }
  std::size_t matched = 0;
  for (const VmId vm : candidates) {
    if (std::binary_search(sorted_selected.begin(), sorted_selected.end(), vm)) ++matched;
  }
  // Candidates are distinct (each VM appears once in a migration list), so
  // every selected VM must be matched by exactly one candidate.
  VDC_INVARIANT(matched == sorted_selected.size(),
                "Minimum Slack selected " << (sorted_selected.size() - matched)
                                          << " non-candidate VM(s)");
  // An empty selection is always legal (the server may already be
  // overloaded — relief targets are); a non-empty one must be admissible
  // together with the server's current residents.
  VDC_INVARIANT(selected.empty() || placement.admits_with(server, selected, constraints),
                "Minimum Slack selection is inadmissible on server " << server);
#else
  static_cast<void>(placement);
  static_cast<void>(server);
  static_cast<void>(candidates);
  static_cast<void>(constraints);
  static_cast<void>(selected);
#endif
}

}  // namespace vdc::consolidate::audit
