// Application auditors: request conservation in the closed/open workload
// (every request ever issued is either completed or resident in some tier —
// nothing is lost or double-counted) and sanity of the analytic MVA oracle
// (utilizations in [0,1], nonnegative residence times, population
// conservation across stations and the think terminal).
#pragma once

#include <cstdint>

#include "app/queueing.hpp"
#include "check/check.hpp"

namespace vdc::app::audit {

/// Queue conservation: arrivals = completions + in-flight.
inline void request_conservation(std::uint64_t issued, std::uint64_t completed,
                                 std::size_t in_flight) {
  VDC_INVARIANT(completed + in_flight == issued,
                "request conservation violated: issued " << issued << " != completed "
                                                         << completed << " + in-flight "
                                                         << in_flight);
}

/// Dispatcher invariant: requests are only routed to serving replicas —
/// never to a booting, draining, or free slot.
inline void dispatch_target_serving(bool serving, std::size_t tier, std::size_t slot) {
  VDC_INVARIANT(serving, "dispatch to non-serving replica: tier " << tier << " slot " << slot);
}

/// Drain invariant: a replica may only retire once every resident job has
/// completed (drain-then-retire, never drop work).
inline void replica_retire_clean(std::size_t resident_jobs, std::size_t tier, std::size_t slot) {
  VDC_INVARIANT(resident_jobs == 0, "replica retired with " << resident_jobs
                                                            << " resident jobs: tier " << tier
                                                            << " slot " << slot);
}

/// Tier-level conservation across dispatch/drain: the requests resident in a
/// tier equal the jobs mapped across all of its replica slots — scaling must
/// not lose or duplicate routed work.
inline void tier_job_conservation(std::size_t mapped_jobs, std::size_t resident_requests,
                                  std::size_t tier) {
  VDC_INVARIANT(mapped_jobs == resident_requests,
                "tier " << tier << " job conservation violated: " << mapped_jobs
                        << " mapped jobs != " << resident_requests << " resident requests");
}

/// MVA outputs are physical: see file comment.
inline void mva_result(const MvaResult& result, std::size_t clients, double think_time_s) {
#if VDC_CHECKS_ENABLED
  VDC_INVARIANT(result.throughput_rps >= 0.0, "negative MVA throughput");
  VDC_INVARIANT(result.response_time_s >= 0.0, "negative MVA response time");
  double resident = 0.0;
  for (const MvaStation& station : result.stations) {
    VDC_INVARIANT(station.utilization >= -1e-9 && station.utilization <= 1.0 + 1e-9,
                  "MVA utilization " << station.utilization << " outside [0, 1]");
    VDC_INVARIANT(station.queue_length >= -1e-9,
                  "negative MVA queue length " << station.queue_length);
    VDC_INVARIANT(station.residence_time_s >= -1e-12,
                  "negative MVA residence time " << station.residence_time_s);
    resident += station.queue_length;
  }
  // Little's law at the terminal: thinking customers = X * Z; all customers
  // are either thinking or at a station.
  const double thinking = result.throughput_rps * think_time_s;
  VDC_INVARIANT(resident + thinking <= static_cast<double>(clients) * (1.0 + 1e-6) + 1e-6,
                "MVA population " << resident + thinking << " exceeds " << clients << " clients");
#else
  static_cast<void>(result);
  static_cast<void>(clients);
  static_cast<void>(think_time_s);
#endif
}

}  // namespace vdc::app::audit
