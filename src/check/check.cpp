#include "check/check.hpp"

namespace vdc::check {

void fail(const char* kind, const char* expression, const std::string& message,
          const char* file, long line, const char* function) {
  std::ostringstream out;
  out << file << ":" << line << ": " << function << ": " << kind << " failed: " << expression;
  if (!message.empty()) out << " - " << message;
  throw CheckFailure(out.str());
}

}  // namespace vdc::check
