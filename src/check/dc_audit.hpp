// Data-center auditors: allocation conservation, DVFS bounds, sleep-state
// exclusivity, and power-model bounds.
//
// These are the paper's physical-plant invariants (Section IV-B): the
// arbitrator grants CPU in absolute GHz and the sum of grants can never
// exceed the capacity at the chosen DVFS frequency; the chosen frequency is
// a ladder point at most f_max; a sleeping server supplies no capacity and
// draws exactly its sleep power; active power stays within the model's
// [idle-at-min-freq, peak] envelope.
#pragma once

#include <cmath>
#include <span>

#include "check/check.hpp"
#include "datacenter/arbitrator.hpp"
#include "datacenter/server.hpp"
#include "datacenter/topology.hpp"

namespace vdc::datacenter::audit {

inline constexpr double kCapacityTolGhz = 1e-6;

/// Post-arbitration conservation: per-VM grants are nonnegative, sum to at
/// most the capacity at the chosen frequency, and the frequency itself is
/// within the CPU's DVFS range. When the server is not saturated every
/// demand must be met in full ("performance assurance": the controller's
/// requested allocation is what the VM actually receives).
inline void arbitration(const CpuSpec& cpu, std::span<const double> demands_ghz,
                        const ArbitrationResult& result) {
  VDC_INVARIANT(result.frequency_ghz <= cpu.max_freq_ghz + 1e-9,
                "arbitrated frequency " << result.frequency_ghz << " GHz above f_max "
                                        << cpu.max_freq_ghz);
  VDC_INVARIANT(result.capacity_ghz <= cpu.max_capacity_ghz() + kCapacityTolGhz,
                "arbitrated capacity " << result.capacity_ghz << " GHz above max "
                                       << cpu.max_capacity_ghz());
  VDC_INVARIANT(result.allocations_ghz.size() == demands_ghz.size(),
                "arbitration width mismatch: " << result.allocations_ghz.size() << " grants for "
                                               << demands_ghz.size() << " demands");
  double granted = 0.0;
  for (std::size_t i = 0; i < result.allocations_ghz.size(); ++i) {
    const double alloc = result.allocations_ghz[i];
    VDC_INVARIANT(alloc >= -kCapacityTolGhz, "negative allocation " << alloc << " GHz");
    if (!result.saturated) {
      VDC_INVARIANT(alloc >= demands_ghz[i] - kCapacityTolGhz,
                    "unsaturated server under-allocated VM " << i << ": granted " << alloc
                                                             << " of " << demands_ghz[i]);
    }
    granted += alloc;
  }
  VDC_INVARIANT(granted <= result.capacity_ghz + kCapacityTolGhz,
                "allocations overcommit the server: " << granted << " GHz granted, capacity "
                                                      << result.capacity_ghz);
}

/// Sleep-state exclusivity: a sleeping server supplies no capacity; an
/// active server's capacity matches its DVFS operating point.
inline void server_state(const Server& server) {
  if (!server.active()) {
    VDC_INVARIANT(check::is_exactly_zero(server.capacity_ghz()),
                  "sleeping server reports capacity " << server.capacity_ghz() << " GHz");
  } else {
    VDC_INVARIANT(server.frequency_ghz() > 0.0 &&
                      server.frequency_ghz() <= server.cpu().max_freq_ghz + 1e-9,
                  "active server frequency " << server.frequency_ghz() << " GHz outside (0, "
                                             << server.cpu().max_freq_ghz << "]");
  }
}

/// Power-model bounds: sleeping draws exactly sleep power; active draws
/// within [sleep, peak].
inline void server_power(const Server& server, double power_w) {
  const PowerModel& model = server.power_model();
  if (server.failed()) {
    VDC_INVARIANT(check::is_exactly_zero(power_w),
                  "failed server draws " << power_w << " W != 0");
    return;
  }
  if (!server.active()) {
    // vdc-lint: float-eq-ok sleep power is assigned verbatim from the model, never computed
    VDC_INVARIANT(power_w == model.sleep_w,
                  "sleeping server draws " << power_w << " W != sleep power " << model.sleep_w);
    return;
  }
  VDC_INVARIANT(std::isfinite(power_w) && power_w >= model.sleep_w - 1e-9,
                "active power " << power_w << " W below sleep floor " << model.sleep_w);
  VDC_INVARIANT(power_w <= model.max_power_w() + 1e-9,
                "active power " << power_w << " W above peak " << model.max_power_w());
}

/// Rack power conservation: a rack's total draw is exactly the sum of its
/// member servers' draws, plus the shared-infrastructure draw if and only
/// if at least one member is awake (a fully sleeping rack switches its
/// PDU/cooling/ToR draw off).
inline void rack_power(RackId rack, bool awake, double shared_power_w, double member_power_w,
                       double rack_total_w) {
  VDC_INVARIANT(std::isfinite(shared_power_w) && shared_power_w >= 0.0,
                "rack " << rack << " shared power " << shared_power_w << " W invalid");
  VDC_INVARIANT(std::isfinite(member_power_w) && member_power_w >= 0.0,
                "rack " << rack << " member power " << member_power_w << " W invalid");
  const double expected = member_power_w + (awake ? shared_power_w : 0.0);
  VDC_INVARIANT(std::abs(rack_total_w - expected) <= 1e-9 * std::max(1.0, expected),
                "rack " << rack << " power " << rack_total_w << " W != shared("
                        << (awake ? shared_power_w : 0.0) << ") + members(" << member_power_w
                        << ")");
}

}  // namespace vdc::datacenter::audit
