// Runtime invariant checking for the simulator (the correctness-tooling
// layer). Three macros with formatted, source-located diagnostics:
//
//   VDC_ASSERT(cond)                 — precondition/sanity check
//   VDC_ASSERT(cond, "x=" << x)      — with a streamed message
//   VDC_INVARIANT(cond, ...)         — a *model* invariant (something the
//                                      paper's equations guarantee); same
//                                      mechanics, distinct diagnostic label
//   VDC_UNREACHABLE(...)             — marks impossible control flow
//
// Failures throw `vdc::check::CheckFailure` so tests can prove an invariant
// fires (EXPECT_THROW) and long sweeps abort the offending scenario instead
// of silently producing physically meaningless results.
//
// The checks compile out when `VDC_CHECKS_ENABLED` is 0 (CMake:
// `-DVDC_CHECKS=OFF`, which defines VDC_CHECKS_OFF): conditions and
// messages are parsed but never evaluated, so hot paths carry zero cost.
// A translation unit may also `#define VDC_CHECKS_ENABLED 0` before
// including this header to opt out locally (used by the no-op tests).
#pragma once

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#if !defined(VDC_CHECKS_ENABLED)
#if defined(VDC_CHECKS_OFF)
#define VDC_CHECKS_ENABLED 0
#else
#define VDC_CHECKS_ENABLED 1
#endif
#endif

namespace vdc::check {

/// Thrown by every failed check. Derives from std::logic_error: a check
/// failure is a programming/model error, never a recoverable condition.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Formats "<file>:<line>: <function>: <kind> failed: <expression> — <message>"
/// and throws CheckFailure. Always compiled (the macros gate the call sites).
[[noreturn]] void fail(const char* kind, const char* expression, const std::string& message,
                       const char* file, long line, const char* function);

/// Exact-zero test for quantities whose zero is *assigned*, never computed:
/// a sleeping server's capacity, a failed server's power draw. These values
/// are set to literal 0.0 by the state machine, so bitwise equality is the
/// contract — a tolerance would mask a state-machine bug that leaves a
/// residual epsilon behind. Do not use on arithmetic results. Accepts -0.0.
[[nodiscard]] constexpr bool is_exactly_zero(double value) noexcept {
  // vdc-lint: float-eq-ok this helper IS the documented exactness contract
  return value == 0.0;
}

namespace detail {

/// Minimal ostream wrapper so the macros accept `"a=" << a << " b=" << b`
/// as a single message argument.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  [[nodiscard]] std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace vdc::check

#if VDC_CHECKS_ENABLED

#define VDC_CHECK_IMPL_(kind, cond, ...)                                              \
  do {                                                                                \
    if (!(cond)) [[unlikely]] {                                                       \
      ::vdc::check::fail(                                                             \
          kind, #cond,                                                                \
          (::vdc::check::detail::MessageStream{} __VA_OPT__(<< __VA_ARGS__)).str(),   \
          __FILE__, __LINE__, __func__);                                              \
    }                                                                                 \
  } while (false)

#define VDC_ASSERT(cond, ...) VDC_CHECK_IMPL_("assertion", cond, __VA_ARGS__)
#define VDC_INVARIANT(cond, ...) VDC_CHECK_IMPL_("invariant", cond, __VA_ARGS__)
#define VDC_UNREACHABLE(...)                                                          \
  ::vdc::check::fail(                                                                 \
      "unreachable", "reached",                                                       \
      (::vdc::check::detail::MessageStream{} __VA_OPT__(<< __VA_ARGS__)).str(),       \
      __FILE__, __LINE__, __func__)

#else  // VDC_CHECKS_ENABLED == 0: parse but never evaluate.

#define VDC_CHECK_NOOP_(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define VDC_ASSERT(cond, ...) VDC_CHECK_NOOP_(cond)
#define VDC_INVARIANT(cond, ...) VDC_CHECK_NOOP_(cond)
#if defined(__GNUC__) || defined(__clang__)
#define VDC_UNREACHABLE(...) __builtin_unreachable()
#else
#define VDC_UNREACHABLE(...) ::std::abort()
#endif

#endif  // VDC_CHECKS_ENABLED
