// Controller auditors: the MPC's QP solution must be primal-feasible
// (M x <= gamma within tolerance — the actuator-range and rate-limit rows
// of Section IV) and no worse than the zero-move plan, which is always
// feasible for the MPC's constraint set because the previous allocation
// already sits inside [c_min, c_max]. The applied allocation itself must
// land inside the actuator box (equation 3's c_min <= c <= c_max).
#pragma once

#include <cmath>
#include <span>

#include "check/check.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qp.hpp"

namespace vdc::control::audit {

/// Primal-feasibility tolerance for Hildreth's dual iteration: the primal
/// point converges from the infeasible side, so small violations at the
/// stopping tolerance are expected.
inline constexpr double kPrimalTol = 1e-4;

/// Audits a converged QP solution. `equality_constrained` skips the
/// zero-move optimality bound (with an eliminated equality block the zero
/// move is generally infeasible, so the bound does not apply).
inline void qp_solution(const linalg::Matrix& hessian, std::span<const double> gradient,
                        const linalg::Matrix& m_ineq, std::span<const double> gamma,
                        const linalg::QpResult& qp, bool equality_constrained) {
#if VDC_CHECKS_ENABLED
  if (!qp.converged) return;  // fallback paths are surfaced via diagnostics
  VDC_INVARIANT(qp.x.size() == gradient.size(),
                "QP solution width " << qp.x.size() << " != gradient width " << gradient.size());
  for (const double v : qp.x) {
    VDC_INVARIANT(std::isfinite(v), "QP solution contains a non-finite entry");
  }
  // KKT primal residual: max_i (Mx - gamma)_i clamped at 0.
  double residual = 0.0;
  for (std::size_t r = 0; r < m_ineq.rows(); ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < m_ineq.cols(); ++c) row += m_ineq(r, c) * qp.x[c];
    residual = std::max(residual, row - gamma[r]);
  }
  VDC_INVARIANT(residual <= kPrimalTol,
                "QP primal residual " << residual << " exceeds tolerance " << kPrimalTol);
  if (!equality_constrained) {
    const double at_solution = linalg::qp_objective(hessian, gradient, qp.x);
    VDC_INVARIANT(at_solution <= kPrimalTol,
                  "QP solution worse than the feasible zero move: J = " << at_solution);
  }
#else
  static_cast<void>(hessian);
  static_cast<void>(gradient);
  static_cast<void>(m_ineq);
  static_cast<void>(gamma);
  static_cast<void>(qp);
  static_cast<void>(equality_constrained);
#endif
}

/// The applied per-VM allocation stays inside the actuator box.
inline void allocation_bounds(std::span<const double> allocation_ghz,
                              std::span<const double> c_min, std::span<const double> c_max) {
  VDC_INVARIANT(allocation_ghz.size() == c_min.size() && allocation_ghz.size() == c_max.size(),
                "allocation width mismatch");
  for (std::size_t m = 0; m < allocation_ghz.size(); ++m) {
    VDC_INVARIANT(allocation_ghz[m] >= c_min[m] - 1e-12 &&
                      allocation_ghz[m] <= c_max[m] + 1e-12,
                  "allocation " << allocation_ghz[m] << " GHz outside [" << c_min[m] << ", "
                                << c_max[m] << "] for input " << m);
  }
}

}  // namespace vdc::control::audit
