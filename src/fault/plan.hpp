// Deterministic fault-injection plans. A `FaultPlan` is pure data: a list
// of `FaultWindow`s (which fault, against which target, over which time
// span, with which probability/magnitude) plus the seed of the injector's
// private RNG stream. Plans are declarative so a chaos scenario is exactly
// reproducible: same plan + same seed => the same faults fire at the same
// simulated times, on every rerun and on every ScenarioRunner thread count.
//
// The paper evaluates the two-level controller on a healthy testbed only;
// this layer supplies the unhealthy ones — failed/slow live migrations,
// servers that refuse to wake or crash outright, sensors that drop or
// corrupt response-time samples, and DVFS actuators stuck at one operating
// point — so the robustness responses (migration retry/backoff, stale-hold
// MPC degradation, crash re-planning) can be tested deterministically.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vdc::fault {

/// Every injectable fault. The comment gives the magnitude's meaning for
/// kinds that use one; the rest ignore it.
enum class FaultKind {
  kMigrationAbort,    ///< live migration rolls back at end of copy
  kMigrationSlowdown, ///< copy phase stretched; magnitude = duration factor (>= 1)
  kWakeFailure,       ///< sleeping server refuses a wake request
  kServerCrash,       ///< server fails at window start, recovers at window end
  kSensorDrop,        ///< response-time sample silently lost
  kSensorSpike,       ///< sample corrupted; magnitude = multiplicative factor
  kSensorStale,       ///< monitor pipeline wedged: period reports stale data
  kDvfsPin,           ///< DVFS stuck; magnitude = pinned frequency (GHz)
  kRackFailure,       ///< whole rack down (shared switch/PDU): correlated
                      ///< member crashes at window start, recovery at end
};

[[nodiscard]] std::string to_string(FaultKind kind);

/// Matches every server/app index.
inline constexpr std::uint32_t kAnyTarget = std::numeric_limits<std::uint32_t>::max();

/// One scheduled fault activation: `kind` against `target` while
/// `start_s <= now < end_s`, firing per query with `probability`.
struct FaultWindow {
  FaultKind kind = FaultKind::kMigrationAbort;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  /// Per-query chance the fault fires while the window is active. Scheduled
  /// (non-probabilistic) kinds — kServerCrash — ignore it.
  double probability = 1.0;
  /// Kind-specific magnitude (see FaultKind); unused kinds ignore it.
  double magnitude = 0.0;
  /// Server id (migration/wake/crash/DVFS kinds) or application index
  /// (sensor kinds); kAnyTarget matches all.
  std::uint32_t target = kAnyTarget;

  [[nodiscard]] bool covers(double now_s, std::uint32_t who) const noexcept {
    return now_s >= start_s && now_s < end_s &&
           (target == kAnyTarget || target == who);
  }
};

/// A complete chaos schedule. Empty plan = no faults; the injector then
/// takes a zero-cost early-out on every query and never draws from its RNG,
/// so fault hooks are free when idle.
struct FaultPlan {
  std::uint64_t seed = 0x600dc0de;
  std::vector<FaultWindow> windows;

  [[nodiscard]] bool enabled() const noexcept { return !windows.empty(); }

  // ---- builder helpers (return *this for chaining) -------------------------
  FaultPlan& add(FaultWindow window);
  /// Migrations issued in [start, end) abort at end-of-copy with chance `p`.
  FaultPlan& migration_aborts(double start_s, double end_s, double p,
                              std::uint32_t server = kAnyTarget);
  /// Migration copy phases in [start, end) take `factor`x as long.
  FaultPlan& migration_slowdown(double start_s, double end_s, double factor,
                                double p = 1.0, std::uint32_t server = kAnyTarget);
  /// Wake requests in [start, end) fail with chance `p`.
  FaultPlan& wake_failures(double start_s, double end_s, double p,
                           std::uint32_t server = kAnyTarget);
  /// `server` crashes at `start` (VMs evicted, capacity lost) and recovers
  /// at `end`. Requires an explicit server — crashing "any" is not a thing.
  FaultPlan& server_crash(std::uint32_t server, double start_s, double end_s);
  /// Response-time samples of `app` in [start, end) are dropped with chance `p`.
  FaultPlan& sensor_dropout(double start_s, double end_s, double p,
                            std::uint32_t app = kAnyTarget);
  /// Samples multiplied by `factor` with chance `p` (measurement spikes).
  FaultPlan& sensor_spikes(double start_s, double end_s, double factor, double p,
                           std::uint32_t app = kAnyTarget);
  /// The monitor pipeline of `app` is wedged for [start, end): every harvest
  /// in the window is flagged stale.
  FaultPlan& sensor_stale(double start_s, double end_s, std::uint32_t app = kAnyTarget);
  /// DVFS of `server` pinned at `freq_ghz` for [start, end).
  FaultPlan& dvfs_pin(std::uint32_t server, double freq_ghz, double start_s, double end_s);
  /// Every server in `rack` crashes together at `start` (shared switch or
  /// PDU loss) and recovers at `end`. The target is a RACK id, resolved
  /// against the owning cluster's topology; requires an explicit rack.
  FaultPlan& rack_failure(std::uint32_t rack, double start_s, double end_s);
};

/// Counters of faults actually injected, exposed for telemetry/tests.
struct FaultCounters {
  std::size_t migration_aborts = 0;
  std::size_t migration_slowdowns = 0;
  std::size_t wake_failures = 0;
  std::size_t server_crashes = 0;
  std::size_t sensor_drops = 0;
  std::size_t sensor_spikes = 0;
  std::size_t stale_periods = 0;
  std::size_t dvfs_pins = 0;
  std::size_t rack_failures = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return migration_aborts + migration_slowdowns + wake_failures + server_crashes +
           sensor_drops + sensor_spikes + stale_periods + dvfs_pins + rack_failures;
  }
};

}  // namespace vdc::fault
