// The runtime half of fault injection. A `FaultInjector` owns the plan and
// its RNG streams; the simulator's hook points *query* it at each decision
// site ("does this migration abort?", "does this sample get dropped?") and
// obey the answer. Decisions are a pure function of (plan, seed, per-stream
// query sequence), so chaos runs are bit-reproducible across reruns and
// thread counts.
//
// Two stream families keep that true under the sharded engine:
//   * datacenter kinds (migration abort/slowdown, wake failure, DVFS pin)
//     draw from one stream seeded with the plan seed. Every such query
//     fires from the serial control-plane spine, so the sequence is the
//     same at any shard count.
//   * sensor kinds (drop/spike/stale) draw from a PER-APPLICATION stream
//     whose seed derives from the plan seed and the app index via
//     util::splitmix64. Drop/spike queries fire per request completion
//     inside the app's own (possibly concurrently advancing) event loop;
//     giving each app its own stream makes those queries race-free and the
//     resulting fault sequence invariant to how apps are partitioned into
//     shards. Call `prepare_sensor_streams` (serial) before any concurrent
//     sensor queries.
//
// Zero cost when idle: a default-constructed injector (or one holding an
// empty plan) answers every query through an early-out that never touches
// the RNG, so instrumented hot paths behave identically to uninstrumented
// ones. `rng_draws()` exists so tests can prove that.
//
// Besides counters, the injector keeps a log of discrete fault events
// (aborts, wake failures, crashes — not per-sample sensor noise, which
// would swamp it); owners flush the log into telemetry annotations so
// chaos runs are observable next to the recorded series.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "util/rng.hpp"

namespace vdc::fault {

/// One discrete injected fault, for telemetry annotation.
struct FaultEvent {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kMigrationAbort;
  std::uint32_t target = kAnyTarget;
};

class FaultInjector {
 public:
  /// Disabled injector: every query is a no-fault early-out.
  FaultInjector() = default;
  /// Validates the plan (fault auditors) and seeds the private RNG.
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // ---- datacenter-level queries -------------------------------------------
  /// Does the migration of `vm` (keyed by *source* server) abort at the end
  /// of its copy phase? Counted when it does.
  [[nodiscard]] bool migration_aborts(double now_s, std::uint32_t source_server);
  /// Factor (>= 1) applied to the migration copy duration; 1.0 = nominal.
  [[nodiscard]] double migration_slowdown(double now_s, std::uint32_t source_server);
  /// Does a wake request against `server` fail?
  [[nodiscard]] bool wake_fails(double now_s, std::uint32_t server);
  /// Frequency `server`'s DVFS is pinned at right now, if any.
  [[nodiscard]] std::optional<double> dvfs_pin_ghz(double now_s, std::uint32_t server);

  // ---- application-level (sensor) queries ---------------------------------
  // Each app draws from its own splitmix64-derived stream; queries against
  // different apps never interact, so they are safe from concurrently
  // advancing shard loops once `prepare_sensor_streams` has run.
  /// Ensures streams exist for apps [0, count). Idempotent, grows only.
  /// Serial: call before the simulation starts (owners do this when the
  /// injector is attached).
  void prepare_sensor_streams(std::uint32_t count);
  /// Is this response-time sample of `app` dropped?
  [[nodiscard]] bool sensor_drops(double now_s, std::uint32_t app);
  /// Multiplicative corruption applied to the sample; 1.0 = clean.
  [[nodiscard]] double sensor_spike(double now_s, std::uint32_t app);
  /// Is `app`'s monitor pipeline wedged (harvest must be flagged stale)?
  [[nodiscard]] bool sensor_stale(double now_s, std::uint32_t app);

  // ---- scheduled faults ----------------------------------------------------
  /// Crash windows (kServerCrash) in plan order; owners schedule the
  /// fail/recover transitions on their simulation clock.
  [[nodiscard]] std::vector<FaultWindow> crash_windows() const;
  /// Is `server` inside one of its crash windows at `now`? Constraint
  /// filters use this to keep the optimizer from planning onto a dead box.
  [[nodiscard]] bool server_down(double now_s, std::uint32_t server) const noexcept;
  /// Owners call this when they execute a scheduled crash (counter + log).
  void note_crash(double now_s, std::uint32_t server);
  /// Rack-failure windows (kRackFailure) in plan order; the target is a
  /// rack id the owner resolves through its cluster topology, crashing and
  /// repairing every member together.
  [[nodiscard]] std::vector<FaultWindow> rack_failure_windows() const;
  /// Owners call this when they execute a scheduled rack failure.
  void note_rack_failure(double now_s, std::uint32_t rack);

  // ---- observability -------------------------------------------------------
  // Aggregated across the datacenter stream and every sensor stream.
  // Serial: call from the control plane or after the run, never while shard
  // loops are advancing.
  [[nodiscard]] const FaultCounters& counters() const noexcept;
  /// Discrete fault events since construction, in injection order (control
  /// plane kinds only — per-sample sensor noise would swamp the log).
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  /// Bernoulli draws consumed so far across every stream; stays 0 while no
  /// window matches — the proof that idle fault hooks cannot perturb a
  /// seeded simulation.
  [[nodiscard]] std::uint64_t rng_draws() const noexcept;

 private:
  /// One application's private sensor-fault stream (see header comment).
  struct SensorStream {
    util::Rng rng{0};
    std::uint64_t draws = 0;
    std::size_t drops = 0;
    std::size_t spikes = 0;
    std::size_t stales = 0;
  };

  /// Draws from `rng` once iff a matching window is active and wins its
  /// coin flip; returns the winning window.
  [[nodiscard]] const FaultWindow* roll(FaultKind kind, double now_s, std::uint32_t target,
                                        util::Rng& rng, std::uint64_t& draws);
  [[nodiscard]] SensorStream& sensor_stream(std::uint32_t app);

  FaultPlan plan_;
  util::Rng rng_{0};  // datacenter kinds; spine-serial by construction
  bool enabled_ = false;
  std::uint64_t draws_ = 0;
  FaultCounters counters_;  // datacenter kinds; sensor kinds live per stream
  mutable FaultCounters aggregated_;  // counters() return storage
  std::vector<SensorStream> sensors_;
  std::vector<FaultEvent> events_;
};

}  // namespace vdc::fault
