#include "fault/plan.hpp"

namespace vdc::fault {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMigrationAbort: return "migration-abort";
    case FaultKind::kMigrationSlowdown: return "migration-slowdown";
    case FaultKind::kWakeFailure: return "wake-failure";
    case FaultKind::kServerCrash: return "server-crash";
    case FaultKind::kSensorDrop: return "sensor-drop";
    case FaultKind::kSensorSpike: return "sensor-spike";
    case FaultKind::kSensorStale: return "sensor-stale";
    case FaultKind::kDvfsPin: return "dvfs-pin";
    case FaultKind::kRackFailure: return "rack-failure";
  }
  return "?";
}

FaultPlan& FaultPlan::add(FaultWindow window) {
  windows.push_back(window);
  return *this;
}

FaultPlan& FaultPlan::migration_aborts(double start_s, double end_s, double p,
                                       std::uint32_t server) {
  return add({.kind = FaultKind::kMigrationAbort,
              .start_s = start_s,
              .end_s = end_s,
              .probability = p,
              .target = server});
}

FaultPlan& FaultPlan::migration_slowdown(double start_s, double end_s, double factor,
                                         double p, std::uint32_t server) {
  return add({.kind = FaultKind::kMigrationSlowdown,
              .start_s = start_s,
              .end_s = end_s,
              .probability = p,
              .magnitude = factor,
              .target = server});
}

FaultPlan& FaultPlan::wake_failures(double start_s, double end_s, double p,
                                    std::uint32_t server) {
  return add({.kind = FaultKind::kWakeFailure,
              .start_s = start_s,
              .end_s = end_s,
              .probability = p,
              .target = server});
}

FaultPlan& FaultPlan::server_crash(std::uint32_t server, double start_s, double end_s) {
  return add({.kind = FaultKind::kServerCrash,
              .start_s = start_s,
              .end_s = end_s,
              .target = server});
}

FaultPlan& FaultPlan::sensor_dropout(double start_s, double end_s, double p,
                                     std::uint32_t app) {
  return add({.kind = FaultKind::kSensorDrop,
              .start_s = start_s,
              .end_s = end_s,
              .probability = p,
              .target = app});
}

FaultPlan& FaultPlan::sensor_spikes(double start_s, double end_s, double factor, double p,
                                    std::uint32_t app) {
  return add({.kind = FaultKind::kSensorSpike,
              .start_s = start_s,
              .end_s = end_s,
              .probability = p,
              .magnitude = factor,
              .target = app});
}

FaultPlan& FaultPlan::sensor_stale(double start_s, double end_s, std::uint32_t app) {
  return add({.kind = FaultKind::kSensorStale,
              .start_s = start_s,
              .end_s = end_s,
              .target = app});
}

FaultPlan& FaultPlan::dvfs_pin(std::uint32_t server, double freq_ghz, double start_s,
                               double end_s) {
  return add({.kind = FaultKind::kDvfsPin,
              .start_s = start_s,
              .end_s = end_s,
              .magnitude = freq_ghz,
              .target = server});
}

FaultPlan& FaultPlan::rack_failure(std::uint32_t rack, double start_s, double end_s) {
  return add({.kind = FaultKind::kRackFailure,
              .start_s = start_s,
              .end_s = end_s,
              .target = rack});
}

}  // namespace vdc::fault
