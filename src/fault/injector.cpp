#include "fault/injector.hpp"

#include "check/fault_audit.hpp"

namespace vdc::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed), enabled_(plan_.enabled()) {
  audit::plan(plan_);
}

const FaultWindow* FaultInjector::roll(FaultKind kind, double now_s, std::uint32_t target) {
  if (!enabled_) return nullptr;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != kind || !w.covers(now_s, target)) continue;
    if (w.probability >= 1.0) return &w;
    ++draws_;
    if (rng_.bernoulli(w.probability)) return &w;
  }
  return nullptr;
}

bool FaultInjector::migration_aborts(double now_s, std::uint32_t source_server) {
  const FaultWindow* w = roll(FaultKind::kMigrationAbort, now_s, source_server);
  if (w == nullptr) return false;
  ++counters_.migration_aborts;
  events_.push_back({now_s, FaultKind::kMigrationAbort, source_server});
  return true;
}

double FaultInjector::migration_slowdown(double now_s, std::uint32_t source_server) {
  const FaultWindow* w = roll(FaultKind::kMigrationSlowdown, now_s, source_server);
  if (w == nullptr) return 1.0;
  ++counters_.migration_slowdowns;
  events_.push_back({now_s, FaultKind::kMigrationSlowdown, source_server});
  return w->magnitude;
}

bool FaultInjector::wake_fails(double now_s, std::uint32_t server) {
  const FaultWindow* w = roll(FaultKind::kWakeFailure, now_s, server);
  if (w == nullptr) return false;
  ++counters_.wake_failures;
  events_.push_back({now_s, FaultKind::kWakeFailure, server});
  return true;
}

std::optional<double> FaultInjector::dvfs_pin_ghz(double now_s, std::uint32_t server) {
  const FaultWindow* w = roll(FaultKind::kDvfsPin, now_s, server);
  if (w == nullptr) return std::nullopt;
  ++counters_.dvfs_pins;
  return w->magnitude;
}

bool FaultInjector::sensor_drops(double now_s, std::uint32_t app) {
  if (roll(FaultKind::kSensorDrop, now_s, app) == nullptr) return false;
  ++counters_.sensor_drops;
  return true;
}

double FaultInjector::sensor_spike(double now_s, std::uint32_t app) {
  const FaultWindow* w = roll(FaultKind::kSensorSpike, now_s, app);
  if (w == nullptr) return 1.0;
  ++counters_.sensor_spikes;
  return w->magnitude;
}

bool FaultInjector::sensor_stale(double now_s, std::uint32_t app) {
  if (roll(FaultKind::kSensorStale, now_s, app) == nullptr) return false;
  ++counters_.stale_periods;
  return true;
}

std::vector<FaultWindow> FaultInjector::crash_windows() const {
  std::vector<FaultWindow> out;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kServerCrash) out.push_back(w);
  }
  return out;
}

bool FaultInjector::server_down(double now_s, std::uint32_t server) const noexcept {
  if (!enabled_) return false;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kServerCrash && w.covers(now_s, server)) return true;
  }
  return false;
}

void FaultInjector::note_crash(double now_s, std::uint32_t server) {
  ++counters_.server_crashes;
  events_.push_back({now_s, FaultKind::kServerCrash, server});
}

std::vector<FaultWindow> FaultInjector::rack_failure_windows() const {
  std::vector<FaultWindow> out;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kRackFailure) out.push_back(w);
  }
  return out;
}

void FaultInjector::note_rack_failure(double now_s, std::uint32_t rack) {
  ++counters_.rack_failures;
  events_.push_back({now_s, FaultKind::kRackFailure, rack});
}

}  // namespace vdc::fault
