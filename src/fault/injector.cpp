#include "fault/injector.hpp"

#include "check/fault_audit.hpp"

namespace vdc::fault {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed), enabled_(plan_.enabled()) {
  audit::plan(plan_);
}

const FaultWindow* FaultInjector::roll(FaultKind kind, double now_s, std::uint32_t target,
                                       util::Rng& rng, std::uint64_t& draws) {
  if (!enabled_) return nullptr;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != kind || !w.covers(now_s, target)) continue;
    if (w.probability >= 1.0) return &w;
    ++draws;
    if (rng.bernoulli(w.probability)) return &w;
  }
  return nullptr;
}

void FaultInjector::prepare_sensor_streams(std::uint32_t count) {
  while (sensors_.size() < count) {
    // Stream seed is a pure function of (plan seed, app index): independent
    // of every other stream and of preparation order.
    const auto app = static_cast<std::uint64_t>(sensors_.size());
    SensorStream stream;
    stream.rng = util::Rng(util::splitmix64(plan_.seed + (app + 1) * util::kSplitMix64Gamma));
    sensors_.push_back(std::move(stream));
  }
}

FaultInjector::SensorStream& FaultInjector::sensor_stream(std::uint32_t app) {
  // Growing here is only safe from serial contexts; concurrent users must
  // have called prepare_sensor_streams up front.
  if (app >= sensors_.size()) prepare_sensor_streams(app + 1);
  return sensors_[app];
}

bool FaultInjector::migration_aborts(double now_s, std::uint32_t source_server) {
  const FaultWindow* w = roll(FaultKind::kMigrationAbort, now_s, source_server, rng_, draws_);
  if (w == nullptr) return false;
  ++counters_.migration_aborts;
  events_.push_back({now_s, FaultKind::kMigrationAbort, source_server});
  return true;
}

double FaultInjector::migration_slowdown(double now_s, std::uint32_t source_server) {
  const FaultWindow* w = roll(FaultKind::kMigrationSlowdown, now_s, source_server, rng_, draws_);
  if (w == nullptr) return 1.0;
  ++counters_.migration_slowdowns;
  events_.push_back({now_s, FaultKind::kMigrationSlowdown, source_server});
  return w->magnitude;
}

bool FaultInjector::wake_fails(double now_s, std::uint32_t server) {
  const FaultWindow* w = roll(FaultKind::kWakeFailure, now_s, server, rng_, draws_);
  if (w == nullptr) return false;
  ++counters_.wake_failures;
  events_.push_back({now_s, FaultKind::kWakeFailure, server});
  return true;
}

std::optional<double> FaultInjector::dvfs_pin_ghz(double now_s, std::uint32_t server) {
  const FaultWindow* w = roll(FaultKind::kDvfsPin, now_s, server, rng_, draws_);
  if (w == nullptr) return std::nullopt;
  ++counters_.dvfs_pins;
  return w->magnitude;
}

bool FaultInjector::sensor_drops(double now_s, std::uint32_t app) {
  if (!enabled_) return false;
  SensorStream& s = sensor_stream(app);
  if (roll(FaultKind::kSensorDrop, now_s, app, s.rng, s.draws) == nullptr) return false;
  ++s.drops;
  return true;
}

double FaultInjector::sensor_spike(double now_s, std::uint32_t app) {
  if (!enabled_) return 1.0;
  SensorStream& s = sensor_stream(app);
  const FaultWindow* w = roll(FaultKind::kSensorSpike, now_s, app, s.rng, s.draws);
  if (w == nullptr) return 1.0;
  ++s.spikes;
  return w->magnitude;
}

bool FaultInjector::sensor_stale(double now_s, std::uint32_t app) {
  if (!enabled_) return false;
  SensorStream& s = sensor_stream(app);
  if (roll(FaultKind::kSensorStale, now_s, app, s.rng, s.draws) == nullptr) return false;
  ++s.stales;
  return true;
}

const FaultCounters& FaultInjector::counters() const noexcept {
  aggregated_ = counters_;
  for (const SensorStream& s : sensors_) {
    aggregated_.sensor_drops += s.drops;
    aggregated_.sensor_spikes += s.spikes;
    aggregated_.stale_periods += s.stales;
  }
  return aggregated_;
}

std::uint64_t FaultInjector::rng_draws() const noexcept {
  std::uint64_t total = draws_;
  for (const SensorStream& s : sensors_) total += s.draws;
  return total;
}

std::vector<FaultWindow> FaultInjector::crash_windows() const {
  std::vector<FaultWindow> out;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kServerCrash) out.push_back(w);
  }
  return out;
}

bool FaultInjector::server_down(double now_s, std::uint32_t server) const noexcept {
  if (!enabled_) return false;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kServerCrash && w.covers(now_s, server)) return true;
  }
  return false;
}

void FaultInjector::note_crash(double now_s, std::uint32_t server) {
  ++counters_.server_crashes;
  events_.push_back({now_s, FaultKind::kServerCrash, server});
}

std::vector<FaultWindow> FaultInjector::rack_failure_windows() const {
  std::vector<FaultWindow> out;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind == FaultKind::kRackFailure) out.push_back(w);
  }
  return out;
}

void FaultInjector::note_rack_failure(double now_s, std::uint32_t rack) {
  ++counters_.rack_failures;
  events_.push_back({now_s, FaultKind::kRackFailure, rack});
}

}  // namespace vdc::fault
