// Sampling probes: named gauges read once per control period into a
// Recorder. A ProbeSet is the pull-side complement to the push-side
// `Recorder::append` — components expose cheap `read()` lambdas (server
// power, DVFS frequency, migrations in flight, ...) and whoever owns the
// period boundary calls `sample()`.
//
// `PeriodicSampler` self-schedules the sampling on a Simulation for
// experiments that have no natural tick of their own.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/recorder.hpp"

namespace vdc::telemetry {

struct Probe {
  std::string series;
  std::function<double()> read;
};

class ProbeSet {
 public:
  /// Registers a gauge; `read` must stay valid for the set's lifetime.
  void add(std::string series, std::function<double()> read);

  /// Reads every probe once, appending into its series of `recorder`.
  void sample(Recorder& recorder) const;
  /// Same, stamping each sample with an explicit time (simulation now()) —
  /// the tsdb backend files it under real time instead of a sample index.
  void sample(Recorder& recorder, double time_s) const;

  [[nodiscard]] std::size_t size() const noexcept { return probes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return probes_.empty(); }
  [[nodiscard]] const std::vector<Probe>& probes() const noexcept { return probes_; }

 private:
  std::vector<Probe> probes_;
};

/// Samples a ProbeSet into a Recorder every `period_s`, first at
/// now + period (aligned with how control loops tick). The sampler, the
/// probe set's gauges, the recorder, and the simulation must all outlive
/// the run.
class PeriodicSampler {
 public:
  PeriodicSampler(sim::Simulation& sim, ProbeSet probes, Recorder& recorder,
                  double period_s);

  /// Schedules the first sample; call once before running the simulation.
  void start();

  [[nodiscard]] std::size_t samples_taken() const noexcept { return samples_; }
  [[nodiscard]] double period_s() const noexcept { return period_s_; }

 private:
  void tick();

  sim::Simulation& sim_;
  ProbeSet probes_;
  Recorder& recorder_;
  double period_s_;
  std::size_t samples_ = 0;
  bool started_ = false;
};

}  // namespace vdc::telemetry
