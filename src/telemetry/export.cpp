#include "telemetry/export.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace vdc::telemetry {

namespace {

/// Shortest representation that parses back to the same double.
std::string format_sample(double value) {
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) throw std::runtime_error("telemetry: cannot format sample");
  return std::string(buffer, ptr);
}

double parse_sample(const std::string& cell) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    throw std::runtime_error("telemetry: cell '" + cell + "' is not numeric");
  }
  return value;
}

/// Splits "name[idx]" into (name, idx); nullopt when the column is scalar.
struct VectorColumn {
  std::string series;
  std::size_t index;
};

std::optional<VectorColumn> parse_vector_column(const std::string& column) {
  if (column.empty() || column.back() != ']') return std::nullopt;
  const std::size_t open = column.rfind('[');
  if (open == std::string::npos || open + 2 > column.size() - 1) return std::nullopt;
  const std::string digits = column.substr(open + 1, column.size() - open - 2);
  std::size_t index = 0;
  const auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), index);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) return std::nullopt;
  return VectorColumn{column.substr(0, open), index};
}

}  // namespace

void write_csv(const Recorder& recorder, std::ostream& out) {
  if (recorder.empty()) throw std::invalid_argument("telemetry::write_csv: no series");

  // Header: scalar series as-is, vector series flattened to max row width.
  std::vector<std::string> header;
  struct Column {
    const std::string* series;
    bool vector;
    std::size_t index;  // tier index within a vector series
  };
  std::vector<Column> columns;
  std::size_t samples = 0;
  for (const std::string& name : recorder.series_names()) {
    samples = std::max(samples, recorder.size(name));
    if (recorder.is_vector(name)) {
      std::size_t width = 0;
      for (const std::vector<double>& row : recorder.rows(name)) {
        width = std::max(width, row.size());
      }
      for (std::size_t j = 0; j < width; ++j) {
        header.push_back(name + "[" + std::to_string(j) + "]");
        columns.push_back(Column{&name, true, j});
      }
    } else {
      header.push_back(name);
      columns.push_back(Column{&name, false, 0});
    }
  }

  util::CsvWriter writer(out, std::move(header));
  std::vector<std::string> cells(columns.size());
  for (std::size_t k = 0; k < samples; ++k) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const Column& column = columns[c];
      cells[c].clear();
      if (column.vector) {
        const auto& rows = recorder.rows(*column.series);
        if (k < rows.size() && column.index < rows[k].size()) {
          cells[c] = format_sample(rows[k][column.index]);
        }
      } else {
        const auto& values = recorder.values(*column.series);
        if (k < values.size()) cells[c] = format_sample(values[k]);
      }
    }
    writer.row(cells);
  }
}

std::string to_csv(const Recorder& recorder) {
  std::ostringstream out;
  write_csv(recorder, out);
  return out.str();
}

std::string annotations_csv(const Recorder& recorder) {
  std::ostringstream out;
  util::CsvWriter writer(out, {"time_s", "label"});
  for (const Annotation& a : recorder.annotations()) {
    writer.row({format_sample(a.time_s), a.label});
  }
  return out.str();
}

void write_csv_file(const Recorder& recorder, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("telemetry::write_csv_file: cannot open " + path.string());
  }
  write_csv(recorder, out);
}

Recorder from_csv(std::string_view text) {
  const util::CsvTable table = util::parse_csv(text);
  Recorder recorder;
  // Column metadata, preserving vector-column grouping.
  std::vector<std::optional<VectorColumn>> vector_columns;
  vector_columns.reserve(table.header.size());
  for (const std::string& column : table.header) {
    vector_columns.push_back(parse_vector_column(column));
  }
  for (const std::vector<std::string>& row : table.rows) {
    for (std::size_t c = 0; c < table.header.size(); ++c) {
      if (c >= row.size() || row[c].empty()) continue;
      if (vector_columns[c] && vector_columns[c]->index > 0) continue;  // handled below
      if (!vector_columns[c]) {
        recorder.append(table.header[c], parse_sample(row[c]));
        continue;
      }
      // First cell of a vector series: gather the contiguous non-empty
      // cells of its sibling columns into one sample row.
      const std::string& series = vector_columns[c]->series;
      std::vector<double> sample;
      for (std::size_t j = c; j < table.header.size(); ++j) {
        if (!vector_columns[j] || vector_columns[j]->series != series) break;
        if (j >= row.size() || row[j].empty()) break;
        sample.push_back(parse_sample(row[j]));
      }
      recorder.append(series, std::move(sample));
    }
  }
  return recorder;
}

Recorder read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("telemetry::read_csv_file: cannot open " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_csv(ss.str());
}

}  // namespace vdc::telemetry
