// Tier-0 storage unit of the streaming telemetry engine: a fixed-capacity
// page of timestamped raw samples. Pages are appended in O(1), chained into
// a per-metric ring (oldest page evicted whole when the page budget is
// exceeded), and their sample vectors are recycled through a free list so a
// steady-state stream allocates nothing.
//
// Timestamps within a metric are non-decreasing (the engine rejects
// out-of-order appends), so each page carries a contiguous time span and
// range queries can binary-search the page chain before touching samples.
#pragma once

#include <cstddef>
#include <vector>

namespace vdc::telemetry::tsdb {

/// One raw observation: when it happened and what was measured.
struct RawSample {
  double time_s = 0.0;
  double value = 0.0;

  friend bool operator==(const RawSample&, const RawSample&) = default;
};

/// A bounded run of consecutive raw samples. `samples` is reserved to the
/// page capacity on first use and never reallocates afterwards.
struct Page {
  std::vector<RawSample> samples;

  [[nodiscard]] bool empty() const noexcept { return samples.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples.size(); }
  /// Timestamp of the first/last sample; callers check empty() first.
  [[nodiscard]] double first_time_s() const noexcept { return samples.front().time_s; }
  [[nodiscard]] double last_time_s() const noexcept { return samples.back().time_s; }
};

}  // namespace vdc::telemetry::tsdb
