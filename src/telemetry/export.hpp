// CSV export/import for recorded series, built on util::csv. One column
// per scalar series; vector series are flattened to indexed columns
// ("alloc[0]", "alloc[1]", ...) and reassembled on import. Series of
// different lengths are padded with empty cells, which import skips — so
// export followed by import reproduces the recorder exactly.
#pragma once

#include <filesystem>
#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/recorder.hpp"

namespace vdc::telemetry {

/// Writes every series of `recorder` as one CSV table (header + rows).
void write_csv(const Recorder& recorder, std::ostream& out);

/// `write_csv` into a string.
[[nodiscard]] std::string to_csv(const Recorder& recorder);

/// `write_csv` into a file; throws std::runtime_error when unwritable.
void write_csv_file(const Recorder& recorder, const std::filesystem::path& path);

/// The recorder's annotations as their own small CSV table
/// ("time_s,label"); empty annotation list yields just the header. Kept
/// separate from `write_csv` so the series table is byte-identical whether
/// or not a run was annotated.
[[nodiscard]] std::string annotations_csv(const Recorder& recorder);

/// Parses a table produced by `write_csv` back into a Recorder. Columns
/// named "name[i]" are reassembled into the vector series "name"; every
/// other column becomes a scalar series. Empty cells are skipped.
[[nodiscard]] Recorder from_csv(std::string_view text);

/// `from_csv` on a file's contents; throws std::runtime_error when
/// unreadable.
[[nodiscard]] Recorder read_csv_file(const std::filesystem::path& path);

}  // namespace vdc::telemetry
