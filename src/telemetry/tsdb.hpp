// Tiered streaming time-series store (netdata-style) for telemetry at
// fleet scale. The Recorder's raw per-series vectors are the memory/IO wall
// at the 100k-server / 1M-VM target: seconds-scale sampling over a week is
// ~600k samples *per metric*, and experiments record thousands of metrics.
// This engine bounds memory per metric while keeping the statistics the
// control plane actually consumes — per-period count/min/avg/max/p90 (the
// paper's MPC tracks the period p90) — exact and cheap:
//
//   tier 0  raw timestamped samples in fixed-capacity ring pages
//           (O(1) append; oldest page evicted whole past the page budget)
//   tier 1  per-period rollups (default: the 4 s control period)
//   tier 2  hourly rollups
//
// Rollups are maintained incrementally by util::WindowStats (Welford
// moments + a util::OrderStatisticTree), so every finalized or still-open
// window's count/min/avg/max/p90 is bit-identical to a brute-force
// recompute over the raw samples of that window — the property the
// differential tests in tests/test_tsdb.cpp pin down. Eviction never goes
// backwards in fidelity: a raw page may be dropped, but the windows it
// contributed to live on in tiers 1 and 2.
//
// Appends must be non-decreasing in time per metric; out-of-order samples
// and NaN samples/timestamps are rejected and counted, never stored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/page.hpp"
#include "telemetry/query.hpp"
#include "util/statistics.hpp"

namespace vdc::telemetry::tsdb {

using MetricId = std::uint32_t;

struct TsdbConfig {
  /// Raw samples per tier-0 page. Appends are O(1); a page is the eviction
  /// granule.
  std::size_t page_samples = 256;
  /// Tier-0 page budget per metric; 0 keeps every raw sample (the
  /// "retention covers the whole run" mode the CSV byte-identity oracle
  /// relies on).
  std::size_t tier0_max_pages = 64;
  /// Tier-1 rollup window (the paper's 4 s control period by default).
  double tier1_period_s = 4.0;
  /// Finalized tier-1 points kept per metric; 0 = unbounded.
  std::size_t tier1_retention_points = 4096;
  /// Tier-2 rollup window (hourly).
  double tier2_period_s = 3600.0;
  /// Finalized tier-2 points kept per metric; 0 = unbounded.
  std::size_t tier2_retention_points = 1024;
  /// The rolled-up quantile (0.9 = the paper's 90-percentile SLA).
  double quantile = 0.9;

  friend bool operator==(const TsdbConfig&, const TsdbConfig&) = default;
};

class Tsdb {
 public:
  /// Validates the config; throws std::invalid_argument on nonsense
  /// (zero-sample pages, non-positive periods, quantile outside [0,1]).
  explicit Tsdb(TsdbConfig config = {});

  /// Opens (or re-opens) a metric by name and returns its id. Idempotent:
  /// an existing name returns the already-assigned id.
  MetricId declare(const std::string& name);
  [[nodiscard]] std::optional<MetricId> find(std::string_view name) const noexcept;
  [[nodiscard]] const std::string& name(MetricId id) const { return metric(id).name; }
  [[nodiscard]] std::size_t metric_count() const noexcept { return metrics_.size(); }

  /// Appends one sample. Returns false (and counts the rejection) when the
  /// value or timestamp is NaN, or when the timestamp precedes the metric's
  /// last accepted sample; equal timestamps are accepted.
  bool append(MetricId id, double time_s, double value);

  /// Moves one metric — name, pages, rollups, accounting — out of `from`
  /// into this store and returns its id here. The sharded engine's
  /// merge-on-query path uses this to combine per-shard stores into one
  /// without copying a single sample. Requires identical configs and a name
  /// not yet declared here (throws std::invalid_argument otherwise); the
  /// slot left behind in `from` is emptied and its name unregistered.
  MetricId adopt(Tsdb& from, MetricId id);

  // ---- queries (ranges are half-open [t0, t1)) ----------------------------
  /// Serves the range from `tier`; kAuto picks the finest tier whose
  /// retained data still covers t0 (see query.hpp for the exact rules).
  [[nodiscard]] QueryResult query(MetricId id, double t0_s, double t1_s,
                                  Tier tier = Tier::kAuto) const;
  /// Retained raw samples in range.
  [[nodiscard]] std::vector<RawSample> raw(MetricId id, double t0_s, double t1_s) const;
  /// Retained rollup points whose windows intersect the range, including
  /// the still-open window (computed on the fly, nothing is mutated).
  [[nodiscard]] std::vector<RollupPoint> rollups(MetricId id, Tier tier, double t0_s,
                                                 double t1_s) const;
  /// Finalized points only (no open window) — the differential tests poke
  /// at these directly.
  [[nodiscard]] const std::deque<RollupPoint>& finalized(MetricId id, Tier tier) const;

  // ---- accounting (the memory-bound and bench contracts) ------------------
  [[nodiscard]] std::size_t samples_appended(MetricId id) const {
    return metric(id).samples_appended;
  }
  [[nodiscard]] std::size_t samples_evicted(MetricId id) const {
    return metric(id).samples_evicted;
  }
  [[nodiscard]] std::size_t rejected_nan(MetricId id) const { return metric(id).rejected_nan; }
  [[nodiscard]] std::size_t rejected_out_of_order(MetricId id) const {
    return metric(id).rejected_out_of_order;
  }
  /// Live tier-0 pages of one metric / across all metrics (the recycling
  /// free list is counted by free_pages, not here).
  [[nodiscard]] std::size_t pages_live(MetricId id) const { return metric(id).pages.size(); }
  [[nodiscard]] std::size_t pages_live() const noexcept;
  [[nodiscard]] std::size_t free_pages() const noexcept { return free_.size(); }
  /// Earliest retained raw timestamp; nullopt when tier 0 is empty.
  [[nodiscard]] std::optional<double> earliest_raw_time_s(MetricId id) const;
  /// Last accepted timestamp; nullopt before the first accepted sample.
  [[nodiscard]] std::optional<double> last_time_s(MetricId id) const;
  /// Deterministic storage-cost model (not RSS): pages at full capacity,
  /// finalized rollup points, and the open-window accumulators at ~40
  /// bytes/resident sample (treap node + moments amortized). The bench's
  /// bytes-per-sample figures and the tests' memory bound both read this.
  [[nodiscard]] std::size_t approx_memory_bytes() const noexcept;

  [[nodiscard]] const TsdbConfig& config() const noexcept { return config_; }

 private:
  /// One rollup tier's live state: finalized ring + open-window accumulator.
  struct TierState {
    std::deque<RollupPoint> points;  // finalized, oldest first
    util::WindowStats acc;           // samples of the still-open window
    std::int64_t open_window = 0;    // floor(t / period) of the open window
    std::size_t evicted_points = 0;
  };

  struct Metric {
    std::string name;
    std::deque<Page> pages;  // oldest first; back page is the append target
    double last_time_s = 0.0;
    bool has_samples = false;
    std::size_t samples_appended = 0;
    std::size_t samples_evicted = 0;
    std::size_t rejected_nan = 0;
    std::size_t rejected_out_of_order = 0;
    TierState tier1;
    TierState tier2;
  };

  [[nodiscard]] const Metric& metric(MetricId id) const;
  [[nodiscard]] Metric& metric(MetricId id);
  [[nodiscard]] double tier_period_s(Tier tier) const;
  [[nodiscard]] const TierState& tier_state(const Metric& m, Tier tier) const;
  void rollup_append(TierState& tier, double period_s, std::size_t retention, double time_s,
                     double value);
  [[nodiscard]] RollupPoint make_point(const TierState& tier, double period_s) const;
  /// True when the tier's retained data still reaches back to t0.
  [[nodiscard]] bool covers(const Metric& m, Tier tier, double t0_s) const;

  TsdbConfig config_;
  std::vector<Metric> metrics_;
  // Transparent ordered map: deterministic iteration and string_view lookup.
  std::map<std::string, MetricId, std::less<>> by_name_;
  std::vector<std::vector<RawSample>> free_;  // recycled page sample vectors
};

}  // namespace vdc::telemetry::tsdb
