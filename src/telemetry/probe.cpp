#include "telemetry/probe.hpp"

#include <stdexcept>
#include <utility>

namespace vdc::telemetry {

void ProbeSet::add(std::string series, std::function<double()> read) {
  if (series.empty()) throw std::invalid_argument("ProbeSet: empty series name");
  if (!read) throw std::invalid_argument("ProbeSet: empty read function");
  probes_.push_back(Probe{std::move(series), std::move(read)});
}

void ProbeSet::sample(Recorder& recorder) const {
  for (const Probe& probe : probes_) recorder.append(probe.series, probe.read());
}

void ProbeSet::sample(Recorder& recorder, double time_s) const {
  for (const Probe& probe : probes_) recorder.append_at(probe.series, time_s, probe.read());
}

PeriodicSampler::PeriodicSampler(sim::Simulation& sim, ProbeSet probes, Recorder& recorder,
                                 double period_s)
    : sim_(sim), probes_(std::move(probes)), recorder_(recorder), period_s_(period_s) {
  if (period_s_ <= 0.0) throw std::invalid_argument("PeriodicSampler: period must be > 0");
}

void PeriodicSampler::start() {
  if (started_) return;
  started_ = true;
  sim_.schedule_after(period_s_, [this] { tick(); });
}

void PeriodicSampler::tick() {
  probes_.sample(recorder_, sim_.now());
  ++samples_;
  sim_.schedule_after(period_s_, [this] { tick(); });
}

}  // namespace vdc::telemetry
