// Named-series recorder: the single sink for everything an experiment
// measures, one sample per control period. Replaces the ad-hoc metric
// vectors that used to live inside `core::Testbed` — any layer (AppStack,
// Testbed, probes) appends into series it names, and exporters/analyses
// read them back uniformly.
//
// Two kinds of series:
//   * scalar — one double per sample (response time p90, cluster power, ...)
//   * vector — one row of doubles per sample (per-tier CPU allocation)
//
// References returned by the accessors stay valid as more series are
// created (series storage is node-based).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vdc::telemetry {

/// A timestamped text marker next to the series — "server 2 crashed",
/// "migration of vm3 aborted". Chaos runs use these to make injected
/// faults visible alongside the numeric telemetry.
struct Annotation {
  double time_s = 0.0;
  std::string label;

  friend bool operator==(const Annotation&, const Annotation&) = default;
};

class Recorder {
 public:
  /// Creates an empty series up front so accessors are valid before the
  /// first sample arrives. No-op when it already exists with this kind.
  void declare_scalar(const std::string& series);
  void declare_vector(const std::string& series);

  /// Appends one sample to a scalar series, creating it on first use.
  void append(const std::string& series, double value);
  /// Appends one row to a vector series, creating it on first use.
  void append(const std::string& series, std::vector<double> row);

  [[nodiscard]] bool has(std::string_view series) const noexcept;
  [[nodiscard]] bool is_vector(std::string_view series) const;

  /// Samples of a scalar series; throws std::out_of_range when unknown or
  /// when the name refers to a vector series.
  [[nodiscard]] const std::vector<double>& values(std::string_view series) const;
  /// Rows of a vector series; throws std::out_of_range when unknown or
  /// when the name refers to a scalar series.
  [[nodiscard]] const std::vector<std::vector<double>>& rows(std::string_view series) const;

  /// Number of samples in a series (either kind); 0 for unknown names.
  [[nodiscard]] std::size_t size(std::string_view series) const noexcept;

  /// Appends a timestamped text marker (kept in insertion order, which for
  /// simulation-driven recorders is time order).
  void annotate(double time_s, std::string label);
  [[nodiscard]] const std::vector<Annotation>& annotations() const noexcept {
    return annotations_;
  }

  /// All series names in creation order.
  [[nodiscard]] const std::vector<std::string>& series_names() const noexcept {
    return names_;
  }
  [[nodiscard]] std::size_t series_count() const noexcept { return names_.size(); }
  [[nodiscard]] bool empty() const noexcept { return names_.empty(); }

  void clear();

  /// Exact equality of series names, kinds, and every sample — the
  /// determinism check the parallel ScenarioRunner is tested against.
  friend bool operator==(const Recorder& a, const Recorder& b);

 private:
  struct Series {
    bool vector = false;
    std::vector<double> scalars;
    std::vector<std::vector<double>> rows;
  };

  Series& open(const std::string& series, bool vector);
  [[nodiscard]] const Series* find(std::string_view series) const noexcept;

  // std::map with transparent comparison: node-based (stable references)
  // and lookups work from string_view without allocating.
  std::map<std::string, Series, std::less<>> series_;
  std::vector<std::string> names_;
  std::vector<Annotation> annotations_;
};

}  // namespace vdc::telemetry
