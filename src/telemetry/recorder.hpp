// Named-series recorder: the single sink for everything an experiment
// measures, one sample per control period. Replaces the ad-hoc metric
// vectors that used to live inside `core::Testbed` — any layer (AppStack,
// Testbed, probes) appends into series it names, and exporters/analyses
// read them back uniformly.
//
// Two kinds of series:
//   * scalar — one double per sample (response time p90, cluster power, ...)
//   * vector — one row of doubles per sample (per-tier CPU allocation)
//
// Two storage backends, selected by RecorderConfig:
//   * kRawVectors — the historical append-only std::vector per series.
//     Unbounded, byte-faithful, and retained as the differential oracle the
//     tsdb backend is tested against.
//   * kTsdb — scalar samples flow into the tiered telemetry::tsdb engine
//     (bounded ring pages + per-period/hourly rollups). While tier-0
//     retention covers the run, values() and every exporter reading it are
//     byte-identical to the raw backend; past retention, raw history ages
//     out but the rollups stay exact. NaN samples are rejected by this
//     backend (counted, never stored) instead of being recorded verbatim.
//     Vector series (rows) stay raw in both backends — they are per-tier
//     allocation snapshots, small and structural, not streaming metrics.
//
// References returned by the accessors stay valid as more series are
// created (series storage is node-based).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/tsdb.hpp"

namespace vdc::telemetry {

/// A timestamped text marker next to the series — "server 2 crashed",
/// "migration of vm3 aborted". Chaos runs use these to make injected
/// faults visible alongside the numeric telemetry.
struct Annotation {
  double time_s = 0.0;
  std::string label;

  friend bool operator==(const Annotation&, const Annotation&) = default;
};

struct RecorderConfig {
  enum class Backend {
    kRawVectors,  ///< historical unbounded vectors (the differential oracle)
    kTsdb,        ///< tiered streaming store with bounded memory
  };
  Backend backend = Backend::kRawVectors;
  /// Timestamp synthesized for the i-th sample of plain append() calls
  /// (i * sample_period_s). append_at() callers supply real times instead.
  double sample_period_s = 1.0;
  tsdb::TsdbConfig tsdb;
};

class Recorder {
 public:
  /// Default recorder keeps the historical raw-vector behavior.
  Recorder() = default;
  explicit Recorder(RecorderConfig config);

  /// Creates an empty series up front so accessors are valid before the
  /// first sample arrives. No-op when it already exists with this kind.
  void declare_scalar(const std::string& series);
  void declare_vector(const std::string& series);

  /// Appends one sample to a scalar series, creating it on first use. The
  /// tsdb backend synthesizes the timestamp index * sample_period_s.
  void append(const std::string& series, double value);
  /// Appends one sample with an explicit timestamp (simulation time).
  /// The raw backend ignores the timestamp — sample order is the contract
  /// there — so raw-vs-tsdb byte identity is unaffected by who supplies it.
  void append_at(const std::string& series, double time_s, double value);
  /// Appends one row to a vector series, creating it on first use.
  void append(const std::string& series, std::vector<double> row);

  [[nodiscard]] bool has(std::string_view series) const noexcept;
  [[nodiscard]] bool is_vector(std::string_view series) const;

  /// Samples of a scalar series; throws std::out_of_range when unknown or
  /// when the name refers to a vector series. Under the tsdb backend this
  /// materializes the retained tier-0 samples into a per-series cache (the
  /// returned reference stays valid and is refreshed in place).
  [[nodiscard]] const std::vector<double>& values(std::string_view series) const;
  /// Rows of a vector series; throws std::out_of_range when unknown or
  /// when the name refers to a scalar series.
  [[nodiscard]] const std::vector<std::vector<double>>& rows(std::string_view series) const;

  /// Number of retained samples in a series (either kind); 0 for unknown
  /// names. Equal to the number appended while nothing has been evicted.
  [[nodiscard]] std::size_t size(std::string_view series) const noexcept;

  /// Moves every series of `other` into this recorder, preserving `other`'s
  /// creation order after this recorder's existing series, and appends its
  /// annotations. The sharded engine merges its per-shard recorders through
  /// this: series nodes and tsdb pages move, samples are never copied.
  /// Requires the same backend/config and disjoint series names (throws
  /// std::invalid_argument otherwise). `other` is left empty.
  void absorb(Recorder&& other);

  /// Appends a timestamped text marker (kept in insertion order, which for
  /// simulation-driven recorders is time order).
  void annotate(double time_s, std::string label);
  [[nodiscard]] const std::vector<Annotation>& annotations() const noexcept {
    return annotations_;
  }

  /// All series names in creation order.
  [[nodiscard]] const std::vector<std::string>& series_names() const noexcept {
    return names_;
  }
  [[nodiscard]] std::size_t series_count() const noexcept { return names_.size(); }
  [[nodiscard]] bool empty() const noexcept { return names_.empty(); }

  void clear();

  [[nodiscard]] const RecorderConfig& config() const noexcept { return config_; }
  [[nodiscard]] RecorderConfig::Backend backend() const noexcept { return config_.backend; }
  /// The tiered store behind the kTsdb backend (scalar series only).
  /// Tier/rollup queries go straight through it: tsdb().find(name) then
  /// tsdb().query(...). Empty under the raw backend.
  [[nodiscard]] const tsdb::Tsdb& tsdb() const noexcept { return tsdb_; }

  /// Exact equality of series names, kinds, and every retained sample —
  /// the determinism check the parallel ScenarioRunner is tested against.
  /// Backend-agnostic: a raw and a tsdb recorder compare equal while their
  /// materialized samples match.
  friend bool operator==(const Recorder& a, const Recorder& b);

 private:
  struct Series {
    bool vector = false;
    std::vector<double> scalars;  // raw backend storage
    std::vector<std::vector<double>> rows;
    tsdb::MetricId metric = 0;  // tsdb backend, scalar series only
    // tsdb backend: tier-0 samples materialized on demand for values().
    mutable std::vector<double> cache;
    mutable bool cache_dirty = false;
  };

  Series& open(const std::string& series, bool vector);
  [[nodiscard]] const Series* find(std::string_view series) const noexcept;
  [[nodiscard]] bool use_tsdb() const noexcept {
    return config_.backend == RecorderConfig::Backend::kTsdb;
  }
  [[nodiscard]] const std::vector<double>& scalar_samples(const Series& s) const;

  RecorderConfig config_;
  tsdb::Tsdb tsdb_{};  // engaged only under the kTsdb backend
  // std::map with transparent comparison: node-based (stable references)
  // and lookups work from string_view without allocating.
  std::map<std::string, Series, std::less<>> series_;
  std::vector<std::string> names_;
  std::vector<Annotation> annotations_;
};

}  // namespace vdc::telemetry
