// Query-side types of the streaming telemetry engine: tier selectors,
// rollup points, and the result of a range query.
//
// Semantics (shared by the engine and its differential test oracles):
//   * Ranges are half-open [t0, t1) over sample timestamps.
//   * A rollup query returns every rollup point whose aligned window
//     [start_s, start_s + period) intersects the range — including the
//     still-open window, computed on the fly from the live accumulator so
//     readers never wait for a window to close.
//   * Tier::kAuto serves the finest tier whose *retained* data still covers
//     t0: raw while tier 0 has not evicted past it, then per-period
//     rollups, then hourly. The selected tier is reported back in
//     QueryResult::tier.
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/page.hpp"

namespace vdc::telemetry::tsdb {

/// Storage tiers, finest to coarsest. kAuto is a query-time selector only.
enum class Tier {
  kRaw = 0,     ///< tier 0: raw timestamped samples in ring pages
  kPeriod = 1,  ///< tier 1: per-period count/min/avg/max/p90 rollups
  kHourly = 2,  ///< tier 2: hourly count/min/avg/max/p90 rollups
  kAuto,        ///< query-time: finest tier still covering the range start
};

/// One downsampled window. The statistics are exactly those of the raw
/// samples that fell in [start_s, start_s + period): Welford mean in append
/// order and type-7 p90 over the order statistics, bit-identical to a
/// brute-force recompute with util::RunningStats + util::quantile.
struct RollupPoint {
  double start_s = 0.0;  ///< aligned window start (floor(t / period) * period)
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p90 = 0.0;  ///< the configured quantile (default the paper's 90th)

  friend bool operator==(const RollupPoint&, const RollupPoint&) = default;
};

/// A range query's answer: exactly one of `raw` / `rollups` is populated,
/// according to the tier that served it.
struct QueryResult {
  Tier tier = Tier::kRaw;              ///< tier that actually served the query
  std::vector<RawSample> raw;          ///< tier == kRaw
  std::vector<RollupPoint> rollups;    ///< tier == kPeriod or kHourly

  [[nodiscard]] std::size_t size() const noexcept {
    return tier == Tier::kRaw ? raw.size() : rollups.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
};

}  // namespace vdc::telemetry::tsdb
