#include "telemetry/recorder.hpp"

#include <stdexcept>

namespace vdc::telemetry {

Recorder::Series& Recorder::open(const std::string& series, bool vector) {
  auto it = series_.find(series);
  if (it == series_.end()) {
    it = series_.emplace(series, Series{.vector = vector, .scalars = {}, .rows = {}}).first;
    names_.push_back(series);
  } else if (it->second.vector != vector) {
    throw std::invalid_argument("Recorder: series '" + series +
                                "' already exists with the other sample kind");
  }
  return it->second;
}

const Recorder::Series* Recorder::find(std::string_view series) const noexcept {
  const auto it = series_.find(series);
  return it == series_.end() ? nullptr : &it->second;
}

void Recorder::declare_scalar(const std::string& series) { open(series, /*vector=*/false); }

void Recorder::declare_vector(const std::string& series) { open(series, /*vector=*/true); }

void Recorder::append(const std::string& series, double value) {
  open(series, /*vector=*/false).scalars.push_back(value);
}

void Recorder::append(const std::string& series, std::vector<double> row) {
  open(series, /*vector=*/true).rows.push_back(std::move(row));
}

bool Recorder::has(std::string_view series) const noexcept { return find(series) != nullptr; }

bool Recorder::is_vector(std::string_view series) const {
  const Series* s = find(series);
  if (s == nullptr) throw std::out_of_range("Recorder: unknown series");
  return s->vector;
}

const std::vector<double>& Recorder::values(std::string_view series) const {
  const Series* s = find(series);
  if (s == nullptr || s->vector) {
    throw std::out_of_range("Recorder: no scalar series named '" + std::string(series) + "'");
  }
  return s->scalars;
}

const std::vector<std::vector<double>>& Recorder::rows(std::string_view series) const {
  const Series* s = find(series);
  if (s == nullptr || !s->vector) {
    throw std::out_of_range("Recorder: no vector series named '" + std::string(series) + "'");
  }
  return s->rows;
}

std::size_t Recorder::size(std::string_view series) const noexcept {
  const Series* s = find(series);
  if (s == nullptr) return 0;
  return s->vector ? s->rows.size() : s->scalars.size();
}

void Recorder::annotate(double time_s, std::string label) {
  annotations_.push_back(Annotation{time_s, std::move(label)});
}

void Recorder::clear() {
  series_.clear();
  names_.clear();
  annotations_.clear();
}

bool operator==(const Recorder& a, const Recorder& b) {
  if (a.names_ != b.names_ || a.annotations_ != b.annotations_) return false;
  for (const std::string& name : a.names_) {
    const Recorder::Series* sa = a.find(name);
    const Recorder::Series* sb = b.find(name);
    if (sb == nullptr || sa->vector != sb->vector) return false;
    if (sa->scalars != sb->scalars || sa->rows != sb->rows) return false;
  }
  return true;
}

}  // namespace vdc::telemetry
