#include "telemetry/recorder.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace vdc::telemetry {

Recorder::Recorder(RecorderConfig config) : config_(config), tsdb_(config.tsdb) {}

Recorder::Series& Recorder::open(const std::string& series, bool vector) {
  auto it = series_.find(series);
  if (it == series_.end()) {
    Series s;
    s.vector = vector;
    if (use_tsdb() && !vector) s.metric = tsdb_.declare(series);
    it = series_.emplace(series, std::move(s)).first;
    names_.push_back(series);
  } else if (it->second.vector != vector) {
    throw std::invalid_argument("Recorder: series '" + series +
                                "' already exists with the other sample kind");
  }
  return it->second;
}

const Recorder::Series* Recorder::find(std::string_view series) const noexcept {
  const auto it = series_.find(series);
  return it == series_.end() ? nullptr : &it->second;
}

void Recorder::declare_scalar(const std::string& series) { open(series, /*vector=*/false); }

void Recorder::declare_vector(const std::string& series) { open(series, /*vector=*/true); }

void Recorder::append(const std::string& series, double value) {
  Series& s = open(series, /*vector=*/false);
  if (use_tsdb()) {
    const double time_s =
        static_cast<double>(tsdb_.samples_appended(s.metric)) * config_.sample_period_s;
    tsdb_.append(s.metric, time_s, value);
    s.cache_dirty = true;
    return;
  }
  s.scalars.push_back(value);
}

void Recorder::append_at(const std::string& series, double time_s, double value) {
  Series& s = open(series, /*vector=*/false);
  if (use_tsdb()) {
    tsdb_.append(s.metric, time_s, value);
    s.cache_dirty = true;
    return;
  }
  // The raw backend is ordinal: sample order is the contract, timestamps
  // are implicit — which is exactly what keeps it byte-identical to the
  // tsdb path while nothing has been evicted.
  s.scalars.push_back(value);
}

void Recorder::append(const std::string& series, std::vector<double> row) {
  open(series, /*vector=*/true).rows.push_back(std::move(row));
}

bool Recorder::has(std::string_view series) const noexcept { return find(series) != nullptr; }

bool Recorder::is_vector(std::string_view series) const {
  const Series* s = find(series);
  if (s == nullptr) throw std::out_of_range("Recorder: unknown series");
  return s->vector;
}

const std::vector<double>& Recorder::scalar_samples(const Series& s) const {
  if (!use_tsdb()) return s.scalars;
  if (s.cache_dirty) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const std::vector<tsdb::RawSample> raw = tsdb_.raw(s.metric, -kInf, kInf);
    s.cache.clear();
    s.cache.reserve(raw.size());
    for (const tsdb::RawSample& sample : raw) s.cache.push_back(sample.value);
    s.cache_dirty = false;
  }
  return s.cache;
}

const std::vector<double>& Recorder::values(std::string_view series) const {
  const Series* s = find(series);
  if (s == nullptr || s->vector) {
    throw std::out_of_range("Recorder: no scalar series named '" + std::string(series) + "'");
  }
  return scalar_samples(*s);
}

const std::vector<std::vector<double>>& Recorder::rows(std::string_view series) const {
  const Series* s = find(series);
  if (s == nullptr || !s->vector) {
    throw std::out_of_range("Recorder: no vector series named '" + std::string(series) + "'");
  }
  return s->rows;
}

std::size_t Recorder::size(std::string_view series) const noexcept {
  const Series* s = find(series);
  if (s == nullptr) return 0;
  if (s->vector) return s->rows.size();
  if (use_tsdb()) {
    return tsdb_.samples_appended(s->metric) - tsdb_.samples_evicted(s->metric);
  }
  return s->scalars.size();
}

void Recorder::absorb(Recorder&& other) {
  if (config_.backend != other.config_.backend ||
      !(config_.tsdb == other.config_.tsdb)) {
    throw std::invalid_argument("Recorder::absorb: config mismatch");
  }
  for (const std::string& name : other.names_) {
    if (series_.find(name) != series_.end()) {
      throw std::invalid_argument("Recorder::absorb: series '" + name + "' exists here too");
    }
    auto node = other.series_.extract(name);
    if (use_tsdb() && !node.mapped().vector) {
      node.mapped().metric = tsdb_.adopt(other.tsdb_, node.mapped().metric);
    }
    series_.insert(std::move(node));
    names_.push_back(name);
  }
  other.names_.clear();
  annotations_.insert(annotations_.end(),
                      std::make_move_iterator(other.annotations_.begin()),
                      std::make_move_iterator(other.annotations_.end()));
  other.annotations_.clear();
}

void Recorder::annotate(double time_s, std::string label) {
  annotations_.push_back(Annotation{time_s, std::move(label)});
}

void Recorder::clear() {
  series_.clear();
  names_.clear();
  annotations_.clear();
  tsdb_ = tsdb::Tsdb(config_.tsdb);
}

bool operator==(const Recorder& a, const Recorder& b) {
  if (a.names_ != b.names_ || a.annotations_ != b.annotations_) return false;
  for (const std::string& name : a.names_) {
    const Recorder::Series* sa = a.find(name);
    const Recorder::Series* sb = b.find(name);
    if (sb == nullptr || sa->vector != sb->vector) return false;
    if (sa->vector) {
      if (sa->rows != sb->rows) return false;
    } else if (a.scalar_samples(*sa) != b.scalar_samples(*sb)) {
      return false;
    }
  }
  return true;
}

}  // namespace vdc::telemetry
