#include "telemetry/tsdb.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace vdc::telemetry::tsdb {

namespace {

/// Aligned window index of a timestamp. Times are well within the int64
/// range for any simulated horizon (a week at 3600 s periods is ~168).
std::int64_t window_of(double time_s, double period_s) {
  return static_cast<std::int64_t>(std::floor(time_s / period_s));
}

double window_start_s(std::int64_t window, double period_s) {
  return static_cast<double>(window) * period_s;
}

}  // namespace

Tsdb::Tsdb(TsdbConfig config) : config_(config) {
  if (config_.page_samples == 0) throw std::invalid_argument("Tsdb: page_samples == 0");
  if (!(config_.tier1_period_s > 0.0) || std::isnan(config_.tier1_period_s)) {
    throw std::invalid_argument("Tsdb: tier1_period_s must be positive");
  }
  if (!(config_.tier2_period_s > 0.0) || std::isnan(config_.tier2_period_s)) {
    throw std::invalid_argument("Tsdb: tier2_period_s must be positive");
  }
  if (std::isnan(config_.quantile) || config_.quantile < 0.0 || config_.quantile > 1.0) {
    throw std::invalid_argument("Tsdb: quantile outside [0,1]");
  }
}

MetricId Tsdb::declare(const std::string& name) {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  const auto id = static_cast<MetricId>(metrics_.size());
  Metric m;
  m.name = name;
  metrics_.push_back(std::move(m));
  by_name_.emplace(name, id);
  return id;
}

MetricId Tsdb::adopt(Tsdb& from, MetricId id) {
  if (!(config_ == from.config_)) {
    throw std::invalid_argument("Tsdb::adopt: config mismatch");
  }
  Metric& source = from.metric(id);
  if (by_name_.find(source.name) != by_name_.end()) {
    throw std::invalid_argument("Tsdb::adopt: metric '" + source.name + "' already declared");
  }
  const auto here = static_cast<MetricId>(metrics_.size());
  from.by_name_.erase(source.name);
  by_name_.emplace(source.name, here);
  metrics_.push_back(std::move(source));
  source = Metric{};  // leave a well-defined empty slot behind
  return here;
}

std::optional<MetricId> Tsdb::find(std::string_view name) const noexcept {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  return std::nullopt;
}

const Tsdb::Metric& Tsdb::metric(MetricId id) const {
  if (id >= metrics_.size()) throw std::out_of_range("Tsdb: unknown metric id");
  return metrics_[id];
}

Tsdb::Metric& Tsdb::metric(MetricId id) {
  if (id >= metrics_.size()) throw std::out_of_range("Tsdb: unknown metric id");
  return metrics_[id];
}

bool Tsdb::append(MetricId id, double time_s, double value) {
  Metric& m = metric(id);
  if (std::isnan(time_s) || std::isnan(value)) {
    ++m.rejected_nan;
    return false;
  }
  if (m.has_samples && time_s < m.last_time_s) {
    ++m.rejected_out_of_order;
    return false;
  }
  m.last_time_s = time_s;
  m.has_samples = true;

  // Tier 0: O(1) ring-page append, whole-page eviction past the budget.
  if (m.pages.empty() || m.pages.back().size() >= config_.page_samples) {
    Page page;
    if (!free_.empty()) {
      page.samples = std::move(free_.back());
      free_.pop_back();
    } else {
      page.samples.reserve(config_.page_samples);
    }
    m.pages.push_back(std::move(page));
    if (config_.tier0_max_pages > 0 && m.pages.size() > config_.tier0_max_pages) {
      Page old = std::move(m.pages.front());
      m.pages.pop_front();
      m.samples_evicted += old.size();
      old.samples.clear();  // keeps capacity; the next page reuses it
      free_.push_back(std::move(old.samples));
    }
  }
  m.pages.back().samples.push_back(RawSample{time_s, value});

  // Tiers 1 and 2 both accumulate straight from the raw stream, so hourly
  // statistics are exact (a window's p90 is not derivable from sub-window
  // p90s).
  rollup_append(m.tier1, config_.tier1_period_s, config_.tier1_retention_points, time_s, value);
  rollup_append(m.tier2, config_.tier2_period_s, config_.tier2_retention_points, time_s, value);
  ++m.samples_appended;
  return true;
}

void Tsdb::rollup_append(TierState& tier, double period_s, std::size_t retention, double time_s,
                         double value) {
  const std::int64_t w = window_of(time_s, period_s);
  if (tier.acc.empty()) {
    tier.open_window = w;
  } else if (w != tier.open_window) {
    tier.points.push_back(make_point(tier, period_s));
    if (retention > 0 && tier.points.size() > retention) {
      tier.points.pop_front();
      ++tier.evicted_points;
    }
    tier.acc.reset();
    tier.open_window = w;
  }
  tier.acc.add(value);
}

RollupPoint Tsdb::make_point(const TierState& tier, double period_s) const {
  RollupPoint p;
  p.start_s = window_start_s(tier.open_window, period_s);
  p.count = tier.acc.count();
  p.min = tier.acc.min();
  p.max = tier.acc.max();
  p.mean = tier.acc.mean();
  p.p90 = tier.acc.quantile(config_.quantile);
  return p;
}

double Tsdb::tier_period_s(Tier tier) const {
  switch (tier) {
    case Tier::kPeriod: return config_.tier1_period_s;
    case Tier::kHourly: return config_.tier2_period_s;
    case Tier::kRaw:
    case Tier::kAuto: break;
  }
  throw std::invalid_argument("Tsdb: tier has no rollup period");
}

const Tsdb::TierState& Tsdb::tier_state(const Metric& m, Tier tier) const {
  switch (tier) {
    case Tier::kPeriod: return m.tier1;
    case Tier::kHourly: return m.tier2;
    case Tier::kRaw:
    case Tier::kAuto: break;
  }
  throw std::invalid_argument("Tsdb: tier has no rollup state");
}

std::vector<RawSample> Tsdb::raw(MetricId id, double t0_s, double t1_s) const {
  const Metric& m = metric(id);
  std::vector<RawSample> out;
  for (const Page& page : m.pages) {
    if (page.empty()) continue;
    if (page.last_time_s() < t0_s || page.first_time_s() >= t1_s) continue;
    const auto lo = std::lower_bound(
        page.samples.begin(), page.samples.end(), t0_s,
        [](const RawSample& s, double t) { return s.time_s < t; });
    const auto hi = std::lower_bound(
        lo, page.samples.end(), t1_s,
        [](const RawSample& s, double t) { return s.time_s < t; });
    out.insert(out.end(), lo, hi);
  }
  return out;
}

std::vector<RollupPoint> Tsdb::rollups(MetricId id, Tier tier, double t0_s, double t1_s) const {
  const Metric& m = metric(id);
  const TierState& state = tier_state(m, tier);
  const double period_s = tier_period_s(tier);
  std::vector<RollupPoint> out;
  // Finalized points are sorted by start; keep every window intersecting
  // [t0, t1).
  for (const RollupPoint& p : state.points) {
    if (p.start_s >= t1_s) break;
    if (p.start_s + period_s > t0_s) out.push_back(p);
  }
  if (!state.acc.empty()) {
    const double open_start_s = window_start_s(state.open_window, period_s);
    if (open_start_s < t1_s && open_start_s + period_s > t0_s) {
      out.push_back(make_point(state, period_s));
    }
  }
  return out;
}

const std::deque<RollupPoint>& Tsdb::finalized(MetricId id, Tier tier) const {
  return tier_state(metric(id), tier).points;
}

bool Tsdb::covers(const Metric& m, Tier tier, double t0_s) const {
  if (tier == Tier::kRaw) {
    // Raw covers t0 while nothing at or after t0 has been evicted. With no
    // evictions tier 0 is the complete history.
    if (m.samples_evicted == 0) return true;
    if (m.pages.empty() || m.pages.front().empty()) return false;
    return m.pages.front().first_time_s() <= t0_s;
  }
  const TierState& state = tier_state(m, tier);
  if (state.evicted_points == 0) return true;
  if (!state.points.empty()) return state.points.front().start_s <= t0_s;
  if (!state.acc.empty()) {
    return window_start_s(state.open_window, tier_period_s(tier)) <= t0_s;
  }
  return false;
}

QueryResult Tsdb::query(MetricId id, double t0_s, double t1_s, Tier tier) const {
  Tier serve = tier;
  if (tier == Tier::kAuto) {
    const Metric& m = metric(id);
    if (covers(m, Tier::kRaw, t0_s)) {
      serve = Tier::kRaw;
    } else if (covers(m, Tier::kPeriod, t0_s)) {
      serve = Tier::kPeriod;
    } else {
      serve = Tier::kHourly;
    }
  }
  QueryResult result;
  result.tier = serve;
  if (serve == Tier::kRaw) {
    result.raw = raw(id, t0_s, t1_s);
  } else {
    result.rollups = rollups(id, serve, t0_s, t1_s);
  }
  return result;
}

std::size_t Tsdb::pages_live() const noexcept {
  std::size_t total = 0;
  for (const Metric& m : metrics_) total += m.pages.size();
  return total;
}

std::optional<double> Tsdb::earliest_raw_time_s(MetricId id) const {
  const Metric& m = metric(id);
  if (m.pages.empty() || m.pages.front().empty()) return std::nullopt;
  return m.pages.front().first_time_s();
}

std::optional<double> Tsdb::last_time_s(MetricId id) const {
  const Metric& m = metric(id);
  if (!m.has_samples) return std::nullopt;
  return m.last_time_s;
}

std::size_t Tsdb::approx_memory_bytes() const noexcept {
  // Cost model constants: a page's reserved capacity, a finalized rollup
  // point, and ~40 bytes per sample resident in an open-window accumulator
  // (32-byte treap node + amortized Welford moments).
  constexpr std::size_t kAccBytesPerSample = 40;
  const std::size_t page_bytes = config_.page_samples * sizeof(RawSample);
  std::size_t total = free_.size() * page_bytes;
  for (const Metric& m : metrics_) {
    total += m.pages.size() * page_bytes;
    total += (m.tier1.points.size() + m.tier2.points.size()) * sizeof(RollupPoint);
    total += (m.tier1.acc.count() + m.tier2.acc.count()) * kAccBytesPerSample;
  }
  return total;
}

}  // namespace vdc::telemetry::tsdb
