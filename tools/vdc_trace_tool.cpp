// vdc_trace_tool — generate and inspect utilization traces.
//
//   vdc_trace_tool generate [--servers N] [--samples N] [--seed S] [--out f.csv]
//   vdc_trace_tool profile  --in f.csv [--period-s 900]
//
// `generate` writes a synthetic trace in the CSV format the simulator
// imports (see src/trace/trace_io.hpp); `profile` prints the statistical
// fingerprint (mean, diurnality, per-sector summaries) of any trace, so
// users can compare their real traces against the synthetic stand-in.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "trace/analysis.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  vdc_trace_tool generate [--servers N] [--samples N] [--seed S]"
               " [--out file.csv]\n"
               "  vdc_trace_tool profile --in file.csv [--period-s 900]\n");
  return 2;
}

bool parse_size(const char* text, std::size_t& out) {
  try {
    out = std::stoul(text);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdc;
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "generate") {
    trace::SyntheticTraceOptions options;
    std::string out_path;
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const char* value = argv[i + 1];
      if (flag == "--servers") {
        if (!parse_size(value, options.servers)) return usage();
      } else if (flag == "--samples") {
        if (!parse_size(value, options.samples)) return usage();
      } else if (flag == "--seed") {
        std::size_t seed = 0;
        if (!parse_size(value, seed)) return usage();
        options.seed = seed;
      } else if (flag == "--out") {
        out_path = value;
      } else {
        return usage();
      }
    }
    const trace::UtilizationTrace trace = trace::generate_synthetic_trace(options);
    if (out_path.empty()) {
      trace::write_trace_csv(std::cout, trace);
    } else {
      trace::write_trace_csv_file(out_path, trace);
      std::fprintf(stderr, "wrote %zu servers x %zu samples to %s\n",
                   trace.server_count(), trace.sample_count(), out_path.c_str());
    }
    return 0;
  }

  if (command == "profile") {
    std::string in_path;
    double period_s = trace::kPaperSamplePeriodS;
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const char* value = argv[i + 1];
      if (flag == "--in") {
        in_path = value;
      } else if (flag == "--period-s") {
        period_s = std::stod(value);
      } else {
        return usage();
      }
    }
    if (in_path.empty()) return usage();
    try {
      const trace::UtilizationTrace trace = trace::read_trace_csv_file(in_path, period_s);
      std::printf("%zu servers x %zu samples (%.0f s period, %.1f days)\n",
                  trace.server_count(), trace.sample_count(), trace.sample_period_s(),
                  trace.duration_s() / 86400.0);
      std::printf("%s", trace::to_string(trace::profile_trace(trace)).c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  return usage();
}
