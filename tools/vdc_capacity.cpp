// vdc_capacity — analytic capacity planning for a multi-tier application.
//
//   vdc_capacity --demands D1,D2[,...] --alloc C1,C2[,...]
//                [--clients N] [--think Z] [--target R]
//
// Demands are per-tier mean CPU costs in Gcycles/request; allocations in
// GHz. Uses exact MVA on the closed PS network (the same model the DES
// testbed realizes) to report throughput, response time, per-tier
// utilization — and, with --target, the uniform capacity scale needed to
// reach a response-time goal.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "app/queueing.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vdc_capacity --demands D1,D2[,...] --alloc C1,C2[,...]\n"
               "                    [--clients N] [--think Z_s] [--target R_s]\n");
  return 2;
}

std::vector<double> parse_list(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(std::stod(cell));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdc::app;

  std::vector<double> demands_gcycles;
  std::vector<double> allocations_ghz;
  std::size_t clients = 40;
  double think_s = 1.0;
  double target_s = 0.0;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    try {
      if (flag == "--demands") {
        demands_gcycles = parse_list(value);
      } else if (flag == "--alloc") {
        allocations_ghz = parse_list(value);
      } else if (flag == "--clients") {
        clients = std::stoul(value);
      } else if (flag == "--think") {
        think_s = std::stod(value);
      } else if (flag == "--target") {
        target_s = std::stod(value);
      } else {
        return usage();
      }
    } catch (...) {
      return usage();
    }
  }
  if (demands_gcycles.empty() || demands_gcycles.size() != allocations_ghz.size()) {
    return usage();
  }

  try {
    ClosedNetwork network;
    network.think_time_s = think_s;
    for (std::size_t i = 0; i < demands_gcycles.size(); ++i) {
      network.service_demands_s.push_back(demands_gcycles[i] / allocations_ghz[i]);
    }
    const MvaResult r = exact_mva(network, clients);
    std::printf("clients %zu, think %.2f s\n", clients, think_s);
    std::printf("throughput     : %.2f req/s (bound %.2f)\n", r.throughput_rps,
                throughput_upper_bound(network, clients));
    std::printf("response time  : %.1f ms\n", r.response_time_s * 1000.0);
    for (std::size_t i = 0; i < r.stations.size(); ++i) {
      std::printf("tier %zu         : residence %.1f ms, queue %.2f, util %.0f%%\n", i + 1,
                  r.stations[i].residence_time_s * 1000.0, r.stations[i].queue_length,
                  100.0 * r.stations[i].utilization);
    }
    if (target_s > 0.0) {
      const double scale = response_time_capacity_scale(network, clients, target_s);
      std::printf("to reach %.0f ms : scale every allocation by %.3f ->", target_s * 1000.0,
                  scale);
      for (const double c : allocations_ghz) std::printf(" %.3f", c * scale);
      std::printf(" GHz\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
