// vdc-lint rule catalog. Each rule is a token-level pass over one file
// (plus one whole-tree pass for include cycles); see DESIGN.md "Domain lint"
// for the catalog rationale and the suppression syntax.
//
//   units             floating-point parameters / members / double-returning
//                     functions whose names carry a physical-quantity stem
//                     (power, energy, freq, capacity, latency, ...) must end
//                     in a unit suffix (_w/_j/_s/_ghz/_hz/_mb/_mbps/...), a
//                     dimensionless marker (_frac/_factor/...), or a
//                     _<unit>_per_<unit> composite.
//   determinism       std::rand/srand, time(), std::chrono::system_clock and
//                     std::random_device are banned everywhere — every result
//                     in this repo must replay bit-identically.
//   unordered-iter    range-for over std::unordered_map/unordered_set in the
//                     plan-ordering subsystems (src/sim, src/consolidate,
//                     src/datacenter, src/core) needs an annotation stating
//                     why iteration order cannot leak into results.
//   float-eq          == / != with a floating operand outside src/linalg
//                     needs an annotation (or an exactness helper).
//   check-side-effect VDC_ASSERT/VDC_INVARIANT/VDC_UNREACHABLE arguments
//                     compile out under -DVDC_CHECKS=OFF, so mutation inside
//                     them (++/--/assignment/container mutators) is a bug.
//   shard-safety      mutable `static` variables (any scope) and mutable
//                     namespace-scope variables in the shard-path subsystems
//                     (src/sim, src/app, src/datacenter, src/core) — code
//                     that runs inside the sharded engine's parallel shard
//                     advance, where hidden shared state is a data race AND
//                     a determinism leak. const/constexpr/constinit and
//                     function declarations are exempt; anything else needs
//                     an annotation stating why it is safe.
//   pragma-once       every .hpp carries #pragma once.
//   include-cycle     the quoted-include graph is acyclic.
//
// Suppression hygiene (rule id `suppression`, never suppressible itself):
// a suppression must name a known rule, carry a reason, and match a finding.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "report.hpp"
#include "source_file.hpp"

namespace vdc::lint {

struct RuleConfig {
  bool units = true;
  bool determinism = true;
  bool unordered_iter = true;
  bool float_eq = true;
  bool check_side_effect = true;
  bool pragma_once = true;
  bool shard_safety = true;
};

/// Per-file rule enablement from the repo-relative path (see DESIGN.md):
/// units applies to src/ and tools/ minus src/linalg (mathematical "power")
/// and src/util (dimensionless data structures); float-eq to src/ and tools/
/// minus src/linalg (numerics owns its exact comparisons); unordered-iter to
/// the four plan-ordering subsystems; shard-safety to the subsystems on the
/// sharded engine's parallel path; the rest everywhere.
RuleConfig config_for(std::string_view rel);

/// All rules enabled regardless of path — used by the fixture tests.
RuleConfig all_rules_config();

/// Collects names declared with std::unordered_map/unordered_set type in
/// `file` into `names`. Run over the whole tree before run_file_rules:
/// containers are declared in headers but iterated in .cpp files.
void collect_unordered_names(const SourceFile& file, std::set<std::string>& names);

/// Runs every enabled single-file rule; appends findings (marking suppressed
/// ones) to `out`. `unordered_names` is the tree-wide set from
/// collect_unordered_names (used by the unordered-iter rule).
void run_file_rules(SourceFile& file, const RuleConfig& cfg,
                    const std::set<std::string>& unordered_names, std::vector<Finding>& out);

/// Reports malformed / unknown-rule / reasonless / unused suppressions.
/// Call after run_file_rules. Suppressions for rules disabled in `cfg`
/// (e.g. float-eq annotations inside src/linalg) are documentation, not
/// stale, and are exempt from the unused check.
void run_suppression_hygiene(const SourceFile& file, const RuleConfig& cfg,
                             std::vector<Finding>& out);

/// Whole-tree pass: cycles in the quoted-include graph of `files`.
void run_include_cycles(std::vector<SourceFile>& files, std::vector<Finding>& out);

bool known_rule(std::string_view name);

}  // namespace vdc::lint
