#include "report.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace vdc::lint {
namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.col, a.rule, a.message) <
           std::tie(b.file, b.line, b.col, b.rule, b.message);
  });
}

std::size_t unsuppressed_count(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

void write_text(std::ostream& os, const std::vector<Finding>& findings,
                std::size_t files_scanned) {
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    os << f.file << ':' << f.line << ':' << f.col << ": [" << f.rule << "] " << f.message
       << '\n';
  }
  const std::size_t open = unsuppressed_count(findings);
  os << "vdc-lint: " << open << " finding" << (open == 1 ? "" : "s") << " ("
     << (findings.size() - open) << " suppressed) across " << files_scanned << " files\n";
}

void write_json(std::ostream& os, const std::vector<Finding>& findings,
                std::size_t files_scanned) {
  os << "{\n  \"files_scanned\": " << files_scanned
     << ",\n  \"unsuppressed\": " << unsuppressed_count(findings) << ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    os << (first ? "\n" : ",\n") << "    {\"file\": \"";
    json_escape(os, f.file);
    os << "\", \"line\": " << f.line << ", \"col\": " << f.col << ", \"rule\": \"";
    json_escape(os, f.rule);
    os << "\", \"suppressed\": " << (f.suppressed ? "true" : "false") << ", \"message\": \"";
    json_escape(os, f.message);
    os << "\"}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace vdc::lint
