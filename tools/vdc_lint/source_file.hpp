// A lexed source file plus its inline lint suppressions.
//
// Suppression syntax (one per comment, `//` comments only):
//
//   // vdc-lint: <rule>-ok <reason>
//
// A trailing comment suppresses findings of <rule> on its own line; a
// comment alone on a line suppresses findings on the next line. The reason
// is mandatory — a bare `<rule>-ok` is itself reported (rule `suppression`),
// as is a suppression naming an unknown rule or one that matched nothing
// (so stale annotations cannot rot in place).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace vdc::lint {

struct Suppression {
  std::string rule;
  std::string reason;
  int comment_line = 0;  ///< line the comment sits on
  int target_line = 0;   ///< line whose findings it suppresses
  bool used = false;
};

struct SourceFile {
  std::string path;  ///< as opened (absolute or cwd-relative)
  std::string rel;   ///< repo-relative with forward slashes; rules scope on this
  std::string content;
  std::vector<Token> tokens;       ///< full stream, comments included
  std::vector<Token> code;         ///< comment-free view
  std::vector<Suppression> suppressions;

  [[nodiscard]] bool is_header() const {
    return rel.size() > 4 && rel.compare(rel.size() - 4, 4, ".hpp") == 0;
  }

  /// Marks a matching suppression used and returns true if `rule` is
  /// suppressed at `line`.
  bool consume_suppression(std::string_view rule, int line);
};

/// Loads and lexes `path`. Returns false (and leaves `out` untouched beyond
/// `path`/`rel`) when the file cannot be read.
bool load_source_file(const std::string& path, const std::string& rel, SourceFile& out);

}  // namespace vdc::lint
