#include "lexer.hpp"

#include <array>
#include <cctype>
#include <cstddef>
#include <string>

namespace vdc::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character punctuation, longest first (maximal munch).
constexpr std::array<std::string_view, 21> kMultiPunct = {
    "<<=", ">>=", "<=>", "...", "->*",                                  // 3 chars
    "::", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",   // 2 chars
    "+=", "-=", "*=", "/=", "->",
};
constexpr std::array<std::string_view, 5> kMultiPunct2 = {"%=", "&=", "|=", "^=", ".*"};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      skip_horizontal_ws();
      if (pos_ >= src_.size()) break;
      const char c = src_[pos_];
      if (c == '\n') {
        advance();
        continue;
      }
      Token tok;
      tok.line = line_;
      tok.col = col_;
      tok.at_line_start = line_fresh_;
      const std::size_t start = pos_;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        tok.kind = TokenKind::kComment;
      } else if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        tok.kind = TokenKind::kComment;
      } else if (c == '"') {
        lex_string(/*raw=*/false);
        tok.kind = TokenKind::kString;
      } else if (c == '\'' && !prev_was_number_) {
        lex_char();
        tok.kind = TokenKind::kChar;
      } else if (digit(c) || (c == '.' && digit(peek(1)))) {
        lex_number();
        tok.kind = TokenKind::kNumber;
      } else if (ident_start(c)) {
        while (pos_ < src_.size() && ident_char(src_[pos_])) advance();
        tok.kind = TokenKind::kIdentifier;
        // Encoding/raw literal prefixes (R"...", u8"...", LR"...", ...) are
        // lexed as an identifier glued to a quote; fold them into one
        // string token.
        const std::string_view prefix = src_.substr(start, pos_ - start);
        if (pos_ < src_.size() && src_[pos_] == '"' && is_literal_prefix(prefix)) {
          lex_string(prefix.find('R') != std::string_view::npos);
          tok.kind = TokenKind::kString;
        }
      } else {
        lex_punct();
        tok.kind = TokenKind::kPunct;
      }
      tok.text = src_.substr(start, pos_ - start);
      prev_was_number_ = tok.kind == TokenKind::kNumber;
      line_fresh_ = false;
      out.push_back(tok);
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.col = col_;
    out.push_back(eof);
    return out;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
      line_fresh_ = true;
      prev_was_number_ = false;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_horizontal_ws() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == ' ' || c == '\t' || c == '\r') {
        advance();
      } else if (c == '\\' && peek(1) == '\n') {  // line continuation
        advance();
        advance();
      } else {
        break;
      }
    }
  }

  void lex_line_comment() {
    while (pos_ < src_.size() && src_[pos_] != '\n') advance();
  }

  void lex_block_comment() {
    advance();  // '/'
    advance();  // '*'
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        advance();
        advance();
        return;
      }
      advance();
    }
  }

  static bool is_literal_prefix(std::string_view s) {
    return s == "u8" || s == "u" || s == "U" || s == "L" || s == "R" || s == "u8R" ||
           s == "uR" || s == "UR" || s == "LR";
  }

  /// Called with pos_ at the opening quote.
  void lex_string(bool raw) {
    advance();  // opening quote
    if (raw) {
      // R"delim( ... )delim"
      std::string_view delim;
      const std::size_t dstart = pos_;
      while (pos_ < src_.size() && src_[pos_] != '(') advance();
      delim = src_.substr(dstart, pos_ - dstart);
      advance();  // '('
      const std::string closer = ")" + std::string(delim) + "\"";
      while (pos_ < src_.size()) {
        if (src_.compare(pos_, closer.size(), closer) == 0) {
          for (std::size_t i = 0; i < closer.size(); ++i) advance();
          return;
        }
        advance();
      }
      return;
    }
    while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) advance();
      advance();
    }
    if (pos_ < src_.size()) advance();  // closing quote
  }

  void lex_char() {
    advance();  // opening '
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) advance();
      advance();
    }
    if (pos_ < src_.size()) advance();  // closing '
  }

  /// pp-number: digits, identifier chars, dots, digit separators, and signs
  /// immediately after a decimal or hex exponent marker.
  void lex_number() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        advance();
      } else if ((c == '+' || c == '-') && pos_ > 0 &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' || src_[pos_ - 1] == 'p' ||
                  src_[pos_ - 1] == 'P')) {
        advance();
      } else {
        break;
      }
    }
  }

  void lex_punct() {
    for (const auto& op : kMultiPunct) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        for (std::size_t i = 0; i < op.size(); ++i) advance();
        return;
      }
    }
    for (const auto& op : kMultiPunct2) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        advance();
        advance();
        return;
      }
    }
    advance();
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool line_fresh_ = true;
  bool prev_was_number_ = false;  ///< so 1'000 separators never open a char literal
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) { return Lexer(source).run(); }

std::vector<Token> code_tokens(const std::vector<Token>& tokens) {
  std::vector<Token> out;
  out.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) out.push_back(t);
  }
  return out;
}

bool is_float_literal(const Token& token) {
  if (token.kind != TokenKind::kNumber) return false;
  const std::string_view t = token.text;
  const bool hex = t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X');
  if (hex) return t.find('p') != std::string_view::npos || t.find('P') != std::string_view::npos;
  if (t.find('.') != std::string_view::npos) return true;
  return t.find('e') != std::string_view::npos || t.find('E') != std::string_view::npos;
}

}  // namespace vdc::lint
