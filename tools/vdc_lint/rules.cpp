#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace vdc::lint {
namespace {

// ---------------------------------------------------------------------------
// shared helpers

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

void emit(SourceFile& file, std::vector<Finding>& out, std::string_view rule, int line, int col,
          std::string message) {
  Finding f;
  f.file = file.rel;
  f.line = line;
  f.col = col;
  f.rule = std::string(rule);
  f.message = std::move(message);
  f.suppressed = file.consume_suppression(rule, line);
  out.push_back(std::move(f));
}

/// Splits an identifier into lowercase segments on underscores and
/// lower-to-upper camel boundaries; trailing member underscores are
/// dropped. "kCapacityTolGhz" -> {k, capacity, tol, ghz};
/// "busy_time_" -> {busy, time}.
std::vector<std::string> segments(std::string_view name) {
  std::vector<std::string> segs;
  std::string cur;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '_') {
      if (!cur.empty()) segs.push_back(cur);
      cur.clear();
      continue;
    }
    const bool upper = std::isupper(static_cast<unsigned char>(c)) != 0;
    if (upper && !cur.empty() &&
        std::islower(static_cast<unsigned char>(cur.back())) != 0) {
      segs.push_back(cur);
      cur.clear();
    }
    cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (!cur.empty()) segs.push_back(cur);
  return segs;
}

/// Physical-quantity stems: a floating declaration whose name contains one
/// of these (as a whole segment) must carry a unit.
const std::set<std::string, std::less<>>& quantity_stems() {
  static const std::set<std::string, std::less<>> kStems = {
      "power",    "energy",  "watt",     "joule",    "freq",    "frequency",
      "capacity", "bandwidth", "latency", "delay",   "duration", "period",
      "deadline", "horizon", "timeout",  "interval", "elapsed",  "demand",
      "work",     "memory",  "mem",      "budget",   "time",
  };
  return kStems;
}

/// Recognized unit suffix segments.
const std::set<std::string, std::less<>>& unit_segments() {
  static const std::set<std::string, std::less<>> kUnits = {
      "w",  "kw",  "mw",  "gw",  "wh", "kwh", "j",  "kj",  "mj", "gj",
      "s",  "ms",  "us",  "ns",  "hz", "khz", "mhz", "ghz",
      "cycles", "gcycles", "mcycles",
      // bare "b" (bytes) is omitted: _b is a far more common generic pair
      // suffix (rack_a/rack_b) than a byte count.
      "kb",  "mb",  "gb",  "tb", "bps", "kbps", "mbps", "gbps",
      "pct", "percent",
  };
  return kUnits;
}

/// Count-like segments accepted on either side of `_per_` composites
/// (events_per_s, j_per_req, ...).
const std::set<std::string, std::less<>>& count_segments() {
  static const std::set<std::string, std::less<>> kCounts = {
      "req", "reqs", "request", "requests", "job", "jobs", "event", "events",
      "vm", "vms", "server", "servers", "move", "moves", "sample", "samples",
      "byte", "bytes",
  };
  return kCounts;
}

/// Dimensionless markers: the name states it is a pure number.
const std::set<std::string, std::less<>>& dimensionless_segments() {
  static const std::set<std::string, std::less<>> kDimless = {
      "frac", "fraction", "ratio", "factor", "scale", "share",
      "util", "utilization", "norm", "coeff",
  };
  return kDimless;
}

bool is_unit_or_count(const std::string& seg) {
  return unit_segments().count(seg) > 0 || count_segments().count(seg) > 0;
}

bool has_quantity_stem(const std::vector<std::string>& segs, std::string& stem_out) {
  for (const std::string& s : segs) {
    if (quantity_stems().count(s) > 0) {
      stem_out = s;
      return true;
    }
  }
  return false;
}

/// True when the segment list ends in a recognized unit, a dimensionless
/// marker, or a `<unit> per <unit>` composite.
bool has_unit_ending(const std::vector<std::string>& segs) {
  if (segs.empty()) return false;
  const std::string& last = segs.back();
  if (unit_segments().count(last) > 0 || dimensionless_segments().count(last) > 0) return true;
  if (segs.size() >= 3 && segs[segs.size() - 2] == "per" && is_unit_or_count(last) &&
      is_unit_or_count(segs[segs.size() - 3])) {
    return true;
  }
  return false;
}

/// True when `name` ends in a unit suffix — used by float-eq to classify
/// identifiers as floating quantities even without a visible declaration.
/// Requires at least two segments: a bare `s` or `w` is a generic variable
/// name, not a suffixed quantity.
bool unit_suffixed(std::string_view name) {
  const std::vector<std::string> segs = segments(name);
  return segs.size() >= 2 && unit_segments().count(segs.back()) > 0;
}

// ---------------------------------------------------------------------------
// rule: pragma-once

void rule_pragma_once(SourceFile& file, std::vector<Finding>& out) {
  if (!file.is_header()) return;
  const std::vector<Token>& code = file.code;
  for (std::size_t i = 0; i + 2 < code.size(); ++i) {
    if (is_punct(code[i], "#") && code[i].at_line_start && is_ident(code[i + 1], "pragma") &&
        is_ident(code[i + 2], "once")) {
      return;
    }
  }
  emit(file, out, "pragma-once", 1, 1, "header is missing #pragma once");
}

// ---------------------------------------------------------------------------
// rule: determinism

void rule_determinism(SourceFile& file, std::vector<Finding>& out) {
  const std::vector<Token>& code = file.code;
  auto prev = [&](std::size_t i, std::size_t back) -> const Token* {
    return i >= back ? &code[i - back] : nullptr;
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const Token* p1 = prev(i, 1);
    const bool member_access = p1 != nullptr && (is_punct(*p1, ".") || is_punct(*p1, "->"));
    if (t.text == "random_device" && !member_access) {
      emit(file, out, "determinism", t.line, t.col,
           "std::random_device is nondeterministic; use a seeded vdc::util::Rng");
      continue;
    }
    if (t.text == "system_clock" && !member_access) {
      emit(file, out, "determinism", t.line, t.col,
           "std::chrono::system_clock reads wall-clock time; results must replay "
           "bit-identically (steady_clock is allowed for duration measurement only)");
      continue;
    }
    const bool next_is_call = i + 1 < code.size() && is_punct(code[i + 1], "(");
    if ((t.text == "rand" || t.text == "srand") && next_is_call && !member_access) {
      emit(file, out, "determinism", t.line, t.col,
           "std::" + std::string(t.text) + " draws from hidden global state; use a seeded "
           "vdc::util::Rng");
      continue;
    }
    if (t.text == "time" && next_is_call) {
      if (member_access) continue;  // sim.time(), obj->time(): a method, not ::time
      bool banned = false;
      if (p1 != nullptr && is_punct(*p1, "::")) {
        const Token* p2 = prev(i, 2);
        // std::time( or globally qualified ::time( — Class::time() is fine.
        banned = p2 == nullptr || p2->kind != TokenKind::kIdentifier || p2->text == "std";
      } else if (p1 != nullptr && p1->kind == TokenKind::kIdentifier) {
        // `return time(...)` is a bare libc call; `double time()` declares.
        banned = p1->text == "return";
      } else if (p1 != nullptr && p1->kind == TokenKind::kPunct && !is_punct(*p1, "#")) {
        banned = true;  // `= time(nullptr)`, `(time(0))`, ...
      }
      if (banned) {
        emit(file, out, "determinism", t.line, t.col,
             "time() reads the wall clock; simulations must derive every timestamp from "
             "sim::Simulation::now()");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// rule: unordered-iter

/// Skips a balanced template argument list starting at the `<` at index i.
/// Returns the index just past the matching `>`, or `i` when unbalanced.
std::size_t skip_angle_brackets(const std::vector<Token>& code, std::size_t i) {
  if (i >= code.size() || !is_punct(code[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < code.size(); ++j) {
    if (is_punct(code[j], "<")) {
      ++depth;
    } else if (is_punct(code[j], ">")) {
      if (--depth == 0) return j + 1;
    } else if (is_punct(code[j], ">>")) {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (is_punct(code[j], ";") || is_punct(code[j], "{")) {
      return i;  // clearly not a template argument list
    }
  }
  return i;
}

void rule_unordered_iter(SourceFile& file, const std::set<std::string>& unordered_names,
                         std::vector<Finding>& out) {
  const std::vector<Token>& code = file.code;
  // Range-for statements whose range mentions a name declared (anywhere in
  // the tree — members live in headers, loops in .cpp files) with an
  // unordered container type.
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!is_ident(code[i], "for") || !is_punct(code[i + 1], "(")) continue;
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    bool classic = false;
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      if (is_punct(code[j], "(")) {
        ++depth;
      } else if (is_punct(code[j], ")")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (depth == 1 && colon == 0) {
        if (is_punct(code[j], ";")) {
          classic = true;
          break;
        }
        if (is_punct(code[j], ":")) colon = j;
      }
    }
    if (classic || colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (code[j].kind != TokenKind::kIdentifier) continue;
      if (unordered_names.count(std::string(code[j].text)) > 0 ||
          code[j].text == "unordered_map" || code[j].text == "unordered_set") {
        emit(file, out, "unordered-iter", code[i].line, code[i].col,
             "range-for over unordered container '" + std::string(code[j].text) +
                 "': iteration order is implementation-defined and must not influence "
                 "plan ordering or floating-point summation");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// declaration scanning shared by units and float-eq

enum class ScopeKind { kNamespace, kClass, kEnum, kBlock };

struct Decl {
  std::string_view name;
  int line = 0;
  int col = 0;
  enum Kind { kParameter, kMember, kGlobal, kFunction } kind = kParameter;
};

const char* decl_kind_name(Decl::Kind k) {
  switch (k) {
    case Decl::kParameter: return "parameter";
    case Decl::kMember: return "member";
    case Decl::kGlobal: return "namespace-scope variable";
    case Decl::kFunction: return "function";
  }
  return "declaration";
}

/// Collects floating-point (double/float) parameters, members,
/// namespace-scope variables, and double-returning function names with a
/// lightweight scope tracker. Locals are deliberately not collected for the
/// units rule (they inherit their unit from what they are assigned), but
/// their names still land in `float_names` for float-eq classification.
void scan_float_decls(const SourceFile& file, std::vector<Decl>& decls,
                      std::set<std::string_view>& float_names) {
  const std::vector<Token>& code = file.code;
  std::vector<ScopeKind> scopes;
  bool pending_class = false;
  bool pending_enum = false;
  bool pending_namespace = false;
  int paren_depth = 0;

  auto current_scope = [&]() -> ScopeKind {
    return scopes.empty() ? ScopeKind::kNamespace : scopes.back();
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(") {
        ++paren_depth;
      } else if (t.text == ")") {
        paren_depth = std::max(0, paren_depth - 1);
      } else if (t.text == "{") {
        if (pending_namespace) {
          scopes.push_back(ScopeKind::kNamespace);
        } else if (pending_enum) {
          scopes.push_back(ScopeKind::kEnum);
        } else if (pending_class) {
          scopes.push_back(ScopeKind::kClass);
        } else {
          scopes.push_back(ScopeKind::kBlock);
        }
        pending_class = pending_enum = pending_namespace = false;
      } else if (t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
      } else if (t.text == ";" || t.text == ")" || t.text == ",") {
        // forward declaration, parameter type, or template parameter list
        // (`template <class T> void f(...)`: the `)` clears before the body
        // brace; for a templated class the `class`/`struct` keyword of the
        // definition re-arms the flag): `class Foo;`, `f(struct tm x)`
        pending_class = pending_enum = pending_namespace = false;
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "namespace") {
      pending_namespace = true;
      continue;
    }
    if (t.text == "enum") {
      pending_enum = true;
      continue;
    }
    if ((t.text == "class" || t.text == "struct" || t.text == "union") && !pending_enum) {
      pending_class = true;
      continue;
    }
    if (t.text != "double" && t.text != "float") continue;
    // Require a declaration-ish context: previous token must not be a member
    // access or scope operator (`x.double`?? impossible, but `static_cast
    // <double>` leaves `<` before, which is fine to skip via the name check).
    const ScopeKind scope = current_scope();
    if (scope == ScopeKind::kEnum) continue;

    // Walk a declarator chain: double [cv/ptr] NAME [init] (, NAME [init])* ;
    std::size_t j = i + 1;
    while (j < code.size()) {
      while (j < code.size() &&
             (is_punct(code[j], "*") || is_punct(code[j], "&") || is_punct(code[j], "&&") ||
              is_ident(code[j], "const") || is_ident(code[j], "volatile"))) {
        ++j;
      }
      if (j >= code.size() || code[j].kind != TokenKind::kIdentifier) break;
      const Token& name = code[j];
      const Token* after = j + 1 < code.size() ? &code[j + 1] : nullptr;
      Decl d;
      d.name = name.text;
      d.line = name.line;
      d.col = name.col;
      bool record = false;
      if (paren_depth > 0) {
        // parameter: `double x`, `double x = 0.1`, `double x,` `double x)`
        if (after != nullptr && (is_punct(*after, ",") || is_punct(*after, ")") ||
                                 is_punct(*after, "=") || is_punct(*after, "[") ||
                                 is_punct(*after, "{"))) {
          d.kind = Decl::kParameter;
          decls.push_back(d);
        }
        float_names.insert(name.text);
        break;  // no declarator chains inside parameter lists we care about
      }
      if (after != nullptr && is_punct(*after, "(") && name.text != "operator" &&
          (scope == ScopeKind::kClass || scope == ScopeKind::kNamespace)) {
        d.kind = Decl::kFunction;
        decls.push_back(d);
        float_names.insert(name.text);
        break;  // one function name per `double` return type
      }
      if (after != nullptr && (is_punct(*after, ";") || is_punct(*after, "=") ||
                               is_punct(*after, "{") || is_punct(*after, "[") ||
                               is_punct(*after, ","))) {
        if (scope == ScopeKind::kClass) {
          d.kind = Decl::kMember;
          record = true;
        } else if (scope == ScopeKind::kNamespace) {
          d.kind = Decl::kGlobal;
          record = true;
        }
        float_names.insert(name.text);  // locals included: float-eq wants them
      }
      if (record) decls.push_back(d);
      // Advance past the initializer to a `,` (next declarator) or `;`/`)`.
      int depth = 0;
      bool more = false;
      for (; j < code.size(); ++j) {
        const Token& s = code[j];
        if (is_punct(s, "(") || is_punct(s, "[") || is_punct(s, "{")) {
          ++depth;
        } else if (is_punct(s, ")") || is_punct(s, "]") || is_punct(s, "}")) {
          if (depth == 0) break;  // end of enclosing list
          --depth;
        } else if (depth == 0 && is_punct(s, ";")) {
          break;
        } else if (depth == 0 && is_punct(s, ",")) {
          ++j;
          more = true;
          break;
        }
      }
      if (!more) break;
    }
  }
}

// ---------------------------------------------------------------------------
// rule: units

void rule_units(SourceFile& file, const std::vector<Decl>& decls, std::vector<Finding>& out) {
  for (const Decl& d : decls) {
    const std::vector<std::string> segs = segments(d.name);
    std::string stem;
    if (!has_quantity_stem(segs, stem)) continue;
    if (has_unit_ending(segs)) continue;
    std::ostringstream msg;
    msg << decl_kind_name(d.kind) << " '" << d.name << "' names the physical quantity '"
        << stem << "' but carries no unit suffix "
        << "(_w/_j/_s/_ghz/_hz/_mb/_mbps/..., a _per_ composite, or a dimensionless "
           "marker like _frac)";
    emit(file, out, "units", d.line, d.col, msg.str());
  }
}

// ---------------------------------------------------------------------------
// rule: float-eq

void rule_float_eq(SourceFile& file, const std::set<std::string_view>& float_names,
                   std::vector<Finding>& out) {
  const std::vector<Token>& code = file.code;
  auto floatish_ident = [&](const Token& t) {
    return t.kind == TokenKind::kIdentifier &&
           (float_names.count(t.text) > 0 || unit_suffixed(t.text));
  };
  auto float_operand = [&](const Token& t) {
    return is_float_literal(t) || floatish_ident(t);
  };
  for (std::size_t i = 1; i + 1 < code.size(); ++i) {
    if (!is_punct(code[i], "==") && !is_punct(code[i], "!=")) continue;
    bool floating = false;
    // Left operand: identifier / literal, or call `name(...) ==` — look back
    // through the matching paren to the callee name.
    const Token& left = code[i - 1];
    if (float_operand(left)) {
      floating = true;
    } else if (is_punct(left, ")")) {
      int depth = 0;
      for (std::size_t j = i - 1; j > 0; --j) {
        if (is_punct(code[j], ")")) {
          ++depth;
        } else if (is_punct(code[j], "(")) {
          if (--depth == 0) {
            if (floatish_ident(code[j - 1])) floating = true;
            break;
          }
        }
      }
    }
    // Right operand: skip unary +/-/! and parens, then walk the postfix
    // member chain — in `demands_ghz.size()` the deciding name is `size`,
    // not the suffixed object it is called on.
    std::size_t r = i + 1;
    while (r < code.size() && (is_punct(code[r], "-") || is_punct(code[r], "+") ||
                               is_punct(code[r], "!") || is_punct(code[r], "("))) {
      ++r;
    }
    if (!floating && r < code.size()) {
      if (is_float_literal(code[r])) {
        floating = true;
      } else if (code[r].kind == TokenKind::kIdentifier) {
        while (r + 2 < code.size() &&
               (is_punct(code[r + 1], ".") || is_punct(code[r + 1], "->")) &&
               code[r + 2].kind == TokenKind::kIdentifier) {
          r += 2;
        }
        if (floatish_ident(code[r])) floating = true;
      }
    }
    if (!floating) continue;
    emit(file, out, "float-eq", code[i].line, code[i].col,
         std::string(code[i].text) + " on a floating-point expression: use a tolerance, an "
         "exactness helper (vdc::check::is_exactly_zero), or annotate why bitwise "
         "equality is the contract");
  }
}

// ---------------------------------------------------------------------------
// rule: check-side-effect

void rule_check_side_effect(SourceFile& file, std::vector<Finding>& out) {
  const std::vector<Token>& code = file.code;
  static const std::set<std::string_view> kMutators = {
      "push_back", "pop_back", "insert", "erase",  "emplace", "emplace_back",
      "clear",     "reset",    "release", "resize", "assign",  "push",
      "pop",       "swap",
  };
  static const std::set<std::string_view> kAssignOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
  };
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "VDC_ASSERT" && t.text != "VDC_INVARIANT" && t.text != "VDC_UNREACHABLE")) {
      continue;
    }
    if (!is_punct(code[i + 1], "(")) continue;
    // `#define VDC_ASSERT(...)` — skip the macro's own definition.
    if (i >= 2 && is_ident(code[i - 1], "define") && is_punct(code[i - 2], "#")) continue;
    int depth = 0;
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      const Token& a = code[j];
      if (is_punct(a, "(")) {
        ++depth;
        continue;
      }
      if (is_punct(a, ")")) {
        if (--depth == 0) break;
        continue;
      }
      std::string offence;
      if (a.kind == TokenKind::kPunct && kAssignOps.count(a.text) > 0) {
        // `[=]` lambda captures are not assignments.
        const bool capture =
            a.text == "=" && (is_punct(code[j - 1], "[") ||
                              (j + 1 < code.size() && is_punct(code[j + 1], "]")));
        if (!capture) offence = "assignment '" + std::string(a.text) + "'";
      } else if (is_punct(a, "++") || is_punct(a, "--")) {
        offence = "'" + std::string(a.text) + "'";
      } else if (a.kind == TokenKind::kIdentifier && kMutators.count(a.text) > 0 && j > 0 &&
                 (is_punct(code[j - 1], ".") || is_punct(code[j - 1], "->")) &&
                 j + 1 < code.size() && is_punct(code[j + 1], "(")) {
        offence = "mutating call '." + std::string(a.text) + "(...)'";
      }
      if (!offence.empty()) {
        emit(file, out, "check-side-effect", a.line, a.col,
             offence + " inside " + std::string(t.text) +
                 ": the whole expression compiles out under -DVDC_CHECKS=OFF, so the "
                 "side effect silently disappears in release builds");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// rule: shard-safety

/// Flags hidden shared mutable state in the subsystems that run inside the
/// sharded engine's parallel shard advance: a mutable `static` variable
/// (namespace scope, function-local, or class-static member) or a mutable
/// namespace-scope variable is written by whichever shard thread gets there
/// first — a data race under TSan and, even when atomically benign, a
/// determinism leak across shard counts. Safe forms are exempt:
/// const/constexpr/constinit declarations, function declarations (a
/// `static` return type is not state), and `thread_local` (no cross-thread
/// sharing; its determinism hazards are the determinism rule's business).
void rule_shard_safety(SourceFile& file, std::vector<Finding>& out) {
  const std::vector<Token>& code = file.code;
  std::vector<ScopeKind> scopes;
  bool pending_class = false;
  bool pending_enum = false;
  bool pending_namespace = false;
  int paren_depth = 0;

  auto current_scope = [&]() -> ScopeKind {
    return scopes.empty() ? ScopeKind::kNamespace : scopes.back();
  };

  /// Classifies the declaration whose specifiers start at `begin`: walks to
  /// the head terminator (`;`, `=`, `{`, or a top-level `(`), skipping
  /// template argument lists. Reports whether the head carries a constness
  /// qualifier, whether it is a function declarator, and the last
  /// identifier seen (the declared name for a variable).
  struct DeclHead {
    bool immutable = false;     // const / constexpr / constinit / thread_local
    bool function = false;      // terminator was a top-level `(`
    bool variable = false;      // terminator was `;`, `=`, or brace-init `{`
    const Token* name = nullptr;
  };
  auto scan_decl_head = [&](std::size_t begin) {
    DeclHead head;
    for (std::size_t j = begin; j < code.size();) {
      const Token& t = code[j];
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "const" || t.text == "constexpr" || t.text == "constinit" ||
            t.text == "thread_local") {
          head.immutable = true;
        } else if (t.text == "operator") {
          head.function = true;  // conversion/operator declarator
          return head;
        } else {
          head.name = &t;
        }
        j = skip_angle_brackets(code, j + 1);
        continue;
      }
      if (is_punct(t, "(")) {
        head.function = true;
        return head;
      }
      if (is_punct(t, ";") || is_punct(t, "=")) {
        head.variable = true;
        return head;
      }
      if (is_punct(t, "{")) {
        // Brace-init of a variable (`static int x{0};`) when a name was
        // seen; otherwise something structural — not a variable.
        head.variable = head.name != nullptr;
        return head;
      }
      if (is_punct(t, "}") || is_punct(t, ")")) return head;  // ran off the decl
      ++j;  // *, &, ::, attributes, ...
    }
    return head;
  };

  // Namespace-scope statement accumulation for the mutable-global check:
  // `begin` is the first token of the current statement, npos while inside
  // a non-namespace scope or after a disqualifying token.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t stmt_begin = 0;  // file scope is namespace scope
  auto statement_boundary = [&](std::size_t next) {
    stmt_begin = current_scope() == ScopeKind::kNamespace ? next : kNone;
  };

  auto check_namespace_decl = [&](std::size_t begin, std::size_t end) {
    // A namespace-scope statement `<specifiers> name [= init] ;` with no
    // top-level parens is a variable definition. Everything else —
    // functions, type definitions, aliases, templates, extern/static
    // (handled by the static check) — is excluded by keyword or shape.
    if (begin == kNone || begin >= end) return;
    // Preprocessor directives carry no ';', so they prefix the following
    // statement's token range: trim them off the front.
    while (begin < end && is_punct(code[begin], "#")) {
      const int directive_line = code[begin].line;
      while (begin < end && code[begin].line == directive_line) ++begin;
    }
    if (begin >= end) return;
    static const std::set<std::string_view> kExcluded = {
        "using",  "typedef", "class",    "struct",        "union",  "enum",
        "friend", "extern",  "template", "static_assert", "static", "concept",
        "requires", "namespace",
    };
    for (std::size_t j = begin; j < end; ++j) {
      if (code[j].kind == TokenKind::kIdentifier && kExcluded.count(code[j].text) > 0) return;
      if (is_punct(code[j], "#")) return;  // mid-statement preprocessor: bail
    }
    const DeclHead head = scan_decl_head(begin);
    if (!head.variable || head.function || head.immutable || head.name == nullptr) return;
    emit(file, out, "shard-safety", head.name->line, head.name->col,
         "namespace-scope variable '" + std::string(head.name->text) +
             "' is mutable shared state on the sharded-engine path: shard threads may "
             "race on it and its value can depend on the shard layout; make it "
             "const/constexpr, move it into the owning object, or annotate why it is safe");
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(") {
        ++paren_depth;
      } else if (t.text == ")") {
        paren_depth = std::max(0, paren_depth - 1);
        pending_class = pending_enum = pending_namespace = false;
      } else if (t.text == "{") {
        if (pending_namespace) {
          scopes.push_back(ScopeKind::kNamespace);
        } else if (pending_enum) {
          scopes.push_back(ScopeKind::kEnum);
        } else if (pending_class) {
          scopes.push_back(ScopeKind::kClass);
        } else {
          scopes.push_back(ScopeKind::kBlock);
        }
        pending_class = pending_enum = pending_namespace = false;
        statement_boundary(i + 1);
      } else if (t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        statement_boundary(i + 1);
      } else if (t.text == ";") {
        if (paren_depth == 0) {
          check_namespace_decl(stmt_begin, i);
          statement_boundary(i + 1);
        }
        pending_class = pending_enum = pending_namespace = false;
      } else if (t.text == ",") {
        pending_class = pending_enum = pending_namespace = false;
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "namespace") {
      pending_namespace = true;
      continue;
    }
    if (t.text == "enum") {
      pending_enum = true;
      continue;
    }
    if ((t.text == "class" || t.text == "struct" || t.text == "union") && !pending_enum) {
      pending_class = true;
      continue;
    }
    if (t.text != "static") continue;
    if (current_scope() == ScopeKind::kEnum || paren_depth > 0) continue;
    const DeclHead head = scan_decl_head(i + 1);
    if (!head.variable || head.function || head.immutable) continue;
    const Token& at = head.name != nullptr ? *head.name : t;
    const std::string what = head.name != nullptr
                                 ? "static variable '" + std::string(head.name->text) + "'"
                                 : "static variable";
    emit(file, out, "shard-safety", at.line, at.col,
         what + " is mutable shared state on the sharded-engine path: initialization "
                "and every write race across shard threads; make it const/constexpr, "
                "move it into the owning object, or annotate why it is safe");
  }
}

// ---------------------------------------------------------------------------
// rule: include-cycle (whole tree)

struct IncludeEdge {
  std::string to;  ///< repo-relative include target
  int line = 0;
};

void collect_includes(const SourceFile& file, const std::set<std::string>& known,
                      std::vector<IncludeEdge>& edges) {
  const std::vector<Token>& code = file.code;
  for (std::size_t i = 0; i + 2 < code.size(); ++i) {
    if (!is_punct(code[i], "#") || !code[i].at_line_start || !is_ident(code[i + 1], "include") ||
        code[i + 2].kind != TokenKind::kString) {
      continue;
    }
    std::string_view quoted = code[i + 2].text;
    if (quoted.size() < 2) continue;
    const std::string inc(quoted.substr(1, quoted.size() - 2));
    // Quoted includes resolve against the includer's directory first, then
    // the src/ include root (how the build sets -I).
    const std::size_t slash = file.rel.find_last_of('/');
    const std::string sibling =
        slash == std::string::npos ? inc : file.rel.substr(0, slash + 1) + inc;
    if (known.count(sibling) > 0) {
      edges.push_back({sibling, code[i].line});
    } else if (known.count("src/" + inc) > 0) {
      edges.push_back({"src/" + inc, code[i].line});
    }
  }
}

void run_include_cycles_impl(std::vector<SourceFile>& files, std::vector<Finding>& out) {
  std::set<std::string> known;
  for (const SourceFile& f : files) known.insert(f.rel);
  std::map<std::string, std::vector<IncludeEdge>> graph;
  std::map<std::string, SourceFile*> by_rel;
  for (SourceFile& f : files) {
    collect_includes(f, known, graph[f.rel]);
    by_rel[f.rel] = &f;
  }
  // Iterative DFS, reporting each back edge as one cycle.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  for (const auto& [root, edges_unused] : graph) {
    (void)edges_unused;
    if (color[root] != 0) continue;
    struct Frame {
      std::string node;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    color[root] = 1;
    path.push_back(root);
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const std::vector<IncludeEdge>& edges = graph[fr.node];
      if (fr.next >= edges.size()) {
        color[fr.node] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const IncludeEdge& e = edges[fr.next++];
      if (color[e.to] == 1) {
        std::ostringstream msg;
        msg << "include cycle: ";
        bool in_cycle = false;
        for (const std::string& n : path) {
          if (n == e.to) in_cycle = true;
          if (in_cycle) msg << n << " -> ";
        }
        msg << e.to;
        SourceFile* owner = by_rel[fr.node];
        emit(*owner, out, "include-cycle", e.line, 1, msg.str());
      } else if (color[e.to] == 0) {
        color[e.to] = 1;
        path.push_back(e.to);
        stack.push_back({e.to});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// public interface

RuleConfig config_for(std::string_view rel) {
  RuleConfig cfg;
  const bool in_src = starts_with(rel, "src/");
  const bool in_tools = starts_with(rel, "tools/");
  cfg.units = (in_src || in_tools) && !starts_with(rel, "src/linalg/") &&
              !starts_with(rel, "src/util/");
  cfg.float_eq = (in_src || in_tools) && !starts_with(rel, "src/linalg/");
  cfg.unordered_iter = starts_with(rel, "src/sim/") || starts_with(rel, "src/consolidate/") ||
                       starts_with(rel, "src/datacenter/") || starts_with(rel, "src/core/");
  cfg.shard_safety = starts_with(rel, "src/sim/") || starts_with(rel, "src/app/") ||
                     starts_with(rel, "src/datacenter/") || starts_with(rel, "src/core/");
  return cfg;
}

RuleConfig all_rules_config() { return RuleConfig{}; }

bool known_rule(std::string_view name) {
  static const std::set<std::string_view> kRules = {
      "units",       "determinism",       "unordered-iter", "float-eq",
      "check-side-effect", "pragma-once", "include-cycle",  "shard-safety",
  };
  return kRules.count(name) > 0;
}

void collect_unordered_names(const SourceFile& file, std::set<std::string>& names) {
  const std::vector<Token>& code = file.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!is_ident(code[i], "unordered_map") && !is_ident(code[i], "unordered_set")) continue;
    std::size_t j = skip_angle_brackets(code, i + 1);
    while (j < code.size() &&
           (is_punct(code[j], "*") || is_punct(code[j], "&") || is_ident(code[j], "const"))) {
      ++j;
    }
    if (j < code.size() && code[j].kind == TokenKind::kIdentifier) {
      names.insert(std::string(code[j].text));
    }
  }
}

void run_file_rules(SourceFile& file, const RuleConfig& cfg,
                    const std::set<std::string>& unordered_names, std::vector<Finding>& out) {
  if (cfg.pragma_once) rule_pragma_once(file, out);
  if (cfg.determinism) rule_determinism(file, out);
  if (cfg.unordered_iter) rule_unordered_iter(file, unordered_names, out);
  if (cfg.check_side_effect) rule_check_side_effect(file, out);
  if (cfg.shard_safety) rule_shard_safety(file, out);
  if (cfg.units || cfg.float_eq) {
    std::vector<Decl> decls;
    std::set<std::string_view> float_names;
    scan_float_decls(file, decls, float_names);
    if (cfg.units) rule_units(file, decls, out);
    if (cfg.float_eq) rule_float_eq(file, float_names, out);
  }
}

void run_suppression_hygiene(const SourceFile& file, const RuleConfig& cfg,
                             std::vector<Finding>& out) {
  for (const Suppression& s : file.suppressions) {
    auto hygiene = [&](const std::string& message) {
      Finding f;
      f.file = file.rel;
      f.line = s.comment_line;
      f.col = 1;
      f.rule = "suppression";
      f.message = message;
      out.push_back(std::move(f));
    };
    if (!known_rule(s.rule)) {
      hygiene("suppression names unknown rule '" + s.rule + "'");
      continue;
    }
    if (s.reason.empty()) {
      hygiene("suppression for '" + s.rule + "' has no reason; write `// vdc-lint: " + s.rule +
              "-ok <why this is safe>`");
      continue;
    }
    const bool rule_ran = (s.rule == "units" && cfg.units) ||
                          (s.rule == "determinism" && cfg.determinism) ||
                          (s.rule == "unordered-iter" && cfg.unordered_iter) ||
                          (s.rule == "float-eq" && cfg.float_eq) ||
                          (s.rule == "check-side-effect" && cfg.check_side_effect) ||
                          (s.rule == "pragma-once" && cfg.pragma_once) ||
                          (s.rule == "shard-safety" && cfg.shard_safety);
    if (rule_ran && !s.used) {
      hygiene("unused suppression: no '" + s.rule + "' finding on line " +
              std::to_string(s.target_line));
    }
  }
}

void run_include_cycles(std::vector<SourceFile>& files, std::vector<Finding>& out) {
  run_include_cycles_impl(files, out);
}

}  // namespace vdc::lint
