// vdc-lint CLI: scans the repository (or explicit paths) with the domain
// rules and reports findings.
//
//   vdc_lint --root <repo>             scan src/ tools/ tests/ bench/ examples/
//   vdc_lint --root <repo> a.cpp b.hpp scan specific files (repo-relative rules)
//   --json                             JSON report on stdout instead of text
//   --out <file>                       additionally write the JSON report here
//   --all-scopes                       run every rule on every file (fixtures)
//   --list-rules                       print rule ids and exit
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;
using namespace vdc::lint;

namespace {

const char* const kRuleIds[] = {
    "units", "determinism", "unordered-iter", "float-eq",
    "check-side-effect", "pragma-once", "include-cycle", "shard-safety",
};

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

/// Skip build trees, VCS metadata, and the lint rule fixtures (which contain
/// deliberate violations).
bool excluded(const std::string& rel) {
  if (rel.find("tests/lint/fixtures") != std::string::npos) return true;
  for (const std::string_view part : {"build/", ".git/"}) {
    if (rel.rfind(part, 0) == 0 || rel.find(std::string("/") + std::string(part)) !=
                                       std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string rel_path(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  return (ec || rel.empty()) ? p.generic_string() : rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool json_stdout = false;
  bool all_scopes = false;
  std::string json_out;
  std::vector<std::string> explicit_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json_stdout = true;
    } else if (arg == "--out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--all-scopes") {
      all_scopes = true;
    } else if (arg == "--list-rules") {
      for (const char* r : kRuleIds) std::cout << r << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vdc_lint [--root DIR] [--json] [--out FILE] [--all-scopes] "
                   "[--list-rules] [paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "vdc_lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  std::vector<fs::path> inputs;
  if (explicit_paths.empty()) {
    for (const char* dir : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && has_source_extension(entry.path())) {
          inputs.push_back(entry.path());
        }
      }
    }
  } else {
    for (const std::string& p : explicit_paths) {
      fs::path path = p;
      if (path.is_relative() && !fs::exists(path)) path = root / p;
      if (fs::is_directory(path)) {
        for (const auto& entry : fs::recursive_directory_iterator(path)) {
          if (entry.is_regular_file() && has_source_extension(entry.path())) {
            inputs.push_back(entry.path());
          }
        }
      } else {
        inputs.push_back(path);
      }
    }
  }

  std::vector<SourceFile> files;
  files.reserve(inputs.size());
  for (const fs::path& p : inputs) {
    const std::string rel = rel_path(root, p);
    if (explicit_paths.empty() && excluded(rel)) continue;
    SourceFile f;
    if (!load_source_file(p.string(), rel, f)) {
      std::cerr << "vdc_lint: cannot read " << p.string() << '\n';
      return 2;
    }
    files.push_back(std::move(f));
  }
  // Deterministic scan order regardless of directory iteration order.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });

  std::set<std::string> unordered_names;
  for (const SourceFile& f : files) collect_unordered_names(f, unordered_names);

  std::vector<Finding> findings;
  for (SourceFile& f : files) {
    const RuleConfig cfg = all_scopes ? all_rules_config() : config_for(f.rel);
    run_file_rules(f, cfg, unordered_names, findings);
  }
  run_include_cycles(files, findings);
  // Hygiene last: include-cycle suppressions are consumed above.
  for (SourceFile& f : files) {
    const RuleConfig cfg = all_scopes ? all_rules_config() : config_for(f.rel);
    run_suppression_hygiene(f, cfg, findings);
  }
  sort_findings(findings);

  if (json_stdout) {
    write_json(std::cout, findings, files.size());
  } else {
    write_text(std::cout, findings, files.size());
  }
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::cerr << "vdc_lint: cannot write " << json_out << '\n';
      return 2;
    }
    write_json(out, findings, files.size());
  }
  return unsuppressed_count(findings) == 0 ? 0 : 1;
}
