#include "source_file.hpp"

#include <fstream>
#include <sstream>

namespace vdc::lint {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses `// vdc-lint: <rule>-ok <reason>` from a comment token's text.
/// Returns true when the comment is a suppression at all (even a malformed
/// one — the caller records it so hygiene checks can flag it).
bool parse_suppression(std::string_view comment, Suppression& out) {
  if (comment.substr(0, 2) != "//") return false;
  std::string_view body = trim(comment.substr(2));
  constexpr std::string_view kTag = "vdc-lint:";
  if (body.substr(0, kTag.size()) != kTag) return false;
  body = trim(body.substr(kTag.size()));
  const std::size_t space = body.find_first_of(" \t");
  std::string_view head = space == std::string_view::npos ? body : body.substr(0, space);
  constexpr std::string_view kOk = "-ok";
  if (head.size() > kOk.size() && head.compare(head.size() - kOk.size(), kOk.size(), kOk) == 0) {
    out.rule = std::string(head.substr(0, head.size() - kOk.size()));
  } else {
    out.rule = std::string(head);  // malformed; hygiene pass reports it
  }
  out.reason =
      std::string(space == std::string_view::npos ? std::string_view{} : trim(body.substr(space)));
  return true;
}

}  // namespace

bool SourceFile::consume_suppression(std::string_view rule, int line) {
  for (Suppression& s : suppressions) {
    if (s.target_line == line && s.rule == rule) {
      s.used = true;
      return true;
    }
  }
  return false;
}

bool load_source_file(const std::string& path, const std::string& rel, SourceFile& out) {
  out.path = path;
  out.rel = rel;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out.content = buf.str();
  out.tokens = tokenize(out.content);
  out.code = code_tokens(out.tokens);

  // A comment that is the first token on its line targets the next line;
  // a trailing comment targets its own line.
  for (const Token& t : out.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    Suppression s;
    if (!parse_suppression(t.text, s)) continue;
    s.comment_line = t.line;
    s.target_line = t.at_line_start ? t.line + 1 : t.line;
    out.suppressions.push_back(s);
  }
  return true;
}

}  // namespace vdc::lint
