// Finding collection and rendering (text and JSON) for vdc-lint.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vdc::lint {

struct Finding {
  std::string file;  ///< repo-relative path
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
};

/// Stable report order: by file, then position, then rule.
void sort_findings(std::vector<Finding>& findings);

/// `file:line:col: [rule] message` per finding (suppressed ones are omitted),
/// then a one-line summary.
void write_text(std::ostream& os, const std::vector<Finding>& findings,
                std::size_t files_scanned);

/// Machine-readable report; includes suppressed findings with a flag.
void write_json(std::ostream& os, const std::vector<Finding>& findings,
                std::size_t files_scanned);

/// Number of findings that are not suppressed.
std::size_t unsuppressed_count(const std::vector<Finding>& findings);

}  // namespace vdc::lint
