// Minimal C++ lexer for vdc-lint (the project's domain static analyzer).
//
// This is deliberately NOT a full C++ front end: the lint rules only need a
// faithful token stream (identifiers, literals, punctuation, comments) with
// source positions. Preprocessor directives are tokenized like ordinary code;
// rules that care about them key off a `#` token at the start of a line.
// String/char literal bodies are opaque single tokens (so banned identifiers
// inside strings never fire), raw strings and digit separators are handled,
// and multi-character operators use maximal munch so `==` can never be
// mistaken for two assignments.
#pragma once

#include <string_view>
#include <vector>

namespace vdc::lint {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,
  kChar,
  kPunct,
  kComment,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string_view text;  ///< view into the source buffer passed to tokenize()
  int line = 0;           ///< 1-based
  int col = 0;            ///< 1-based, in bytes
  bool at_line_start = false;  ///< first non-whitespace token on its line
};

/// Tokenizes `source` (which must outlive the returned tokens). Comments are
/// emitted as kComment tokens — the suppression scanner consumes them; rule
/// passes usually iterate a comment-free view (see code_tokens()).
std::vector<Token> tokenize(std::string_view source);

/// The subsequence of `tokens` without comments (rules operate on this).
std::vector<Token> code_tokens(const std::vector<Token>& tokens);

/// True for a numeric literal token that is a floating-point literal
/// (has a fraction dot, a decimal exponent, or a hex-float exponent).
bool is_float_literal(const Token& token);

}  // namespace vdc::lint
