// vdc_dcsim — run a trace-driven data-center power simulation from the
// command line (the Section VI-B environment as a tool).
//
//   vdc_dcsim [--vms N] [--algorithm ipac|pmapper|none] [--no-dvfs]
//             [--period-hours H] [--guard] [--trace file.csv]
//             [--pool N] [--seed S] [--target U] [--power-csv out.csv]
//
// Without --trace a synthetic trace is generated (seeded, reproducible).
// Prints the energy/migration/SLA summary; --power-csv dumps the cluster
// power series for plotting.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/trace_sim.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "util/csv.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vdc_dcsim [--vms N] [--algorithm ipac|pmapper|none] [--no-dvfs]\n"
               "                 [--period-hours H] [--guard] [--trace file.csv]\n"
               "                 [--pool N] [--seed S] [--target U] [--power-csv out]\n"
               "                 [--forecast none|recent|diurnal]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdc;

  core::TraceSimConfig config;
  config.num_vms = 500;
  std::string trace_path;
  std::string power_csv;
  bool dvfs_explicit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    try {
      if (flag == "--vms") {
        config.num_vms = std::stoul(next());
      } else if (flag == "--algorithm") {
        const std::string name = next();
        if (name == "ipac") {
          config.algorithm = core::ConsolidationAlgorithm::kIpac;
        } else if (name == "pmapper") {
          config.algorithm = core::ConsolidationAlgorithm::kPMapper;
        } else if (name == "none") {
          config.algorithm = core::ConsolidationAlgorithm::kNone;
        } else {
          return usage();
        }
      } else if (flag == "--no-dvfs") {
        config.dvfs = false;
        dvfs_explicit = true;
      } else if (flag == "--period-hours") {
        config.consolidation_period_s = std::stod(next()) * 3600.0;
      } else if (flag == "--guard") {
        config.on_demand_overload_guard = true;
      } else if (flag == "--forecast") {
        const std::string mode = next();
        if (mode == "recent") {
          config.forecast = core::TraceSimConfig::Forecast::kRecentPeak;
        } else if (mode == "diurnal") {
          config.forecast = core::TraceSimConfig::Forecast::kDiurnalPeak;
        } else if (mode == "none") {
          config.forecast = core::TraceSimConfig::Forecast::kNone;
        } else {
          return usage();
        }
      } else if (flag == "--trace") {
        trace_path = next();
      } else if (flag == "--pool") {
        config.pool_size = std::stoul(next());
      } else if (flag == "--seed") {
        config.seed = std::stoul(next());
      } else if (flag == "--target") {
        config.utilization_target = std::stod(next());
      } else if (flag == "--power-csv") {
        power_csv = next();
      } else {
        return usage();
      }
    } catch (...) {
      return usage();
    }
  }
  (void)dvfs_explicit;

  try {
    trace::UtilizationTrace trace = [&] {
      if (!trace_path.empty()) return trace::read_trace_csv_file(trace_path);
      trace::SyntheticTraceOptions options;
      options.servers = std::max<std::size_t>(config.num_vms, 1);
      return trace::generate_synthetic_trace(options);
    }();
    if (config.num_vms > trace.server_count()) {
      std::fprintf(stderr, "error: --vms %zu exceeds trace series count %zu\n",
                   config.num_vms, trace.server_count());
      return 1;
    }

    std::fprintf(stderr, "simulating %zu VMs over %.1f days, %s%s, period %.1f h ...\n",
                 config.num_vms, trace.duration_s() / 86400.0,
                 core::to_string(config.algorithm).c_str(),
                 config.dvfs ? " + DVFS" : " (no DVFS)",
                 config.consolidation_period_s / 3600.0);
    const core::TraceDrivenSimulator simulator(trace);
    const core::TraceSimResult result = simulator.run(config);

    std::printf("energy total        : %.1f kWh\n", result.total_energy_wh / 1000.0);
    std::printf("energy per VM       : %.1f Wh\n", result.energy_wh_per_vm);
    std::printf("optimizer runs      : %zu\n", result.optimizer_invocations);
    std::printf("migrations          : %zu\n", result.migrations);
    std::printf("guard migrations    : %zu\n", result.guard_migrations);
    std::printf("server wakes        : %zu\n", result.server_wakes);
    std::printf("peak active servers : %zu\n", result.peak_active_servers);
    std::printf("final active servers: %zu\n", result.final_active_servers);
    std::printf("overload fraction   : %.2f%%\n", 100.0 * result.overload_fraction);

    if (!power_csv.empty()) {
      std::ofstream out(power_csv);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", power_csv.c_str());
        return 1;
      }
      util::CsvWriter writer(out, {"sample", "time_s", "power_w"});
      for (std::size_t k = 0; k < result.power_series_w.size(); ++k) {
        writer.row(std::vector<double>{static_cast<double>(k),
                                       static_cast<double>(k) * trace.sample_period_s(),
                                       result.power_series_w[k]});
      }
      std::fprintf(stderr, "wrote power series to %s\n", power_csv.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
